package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
)

func sampleResult() *Result {
	return &Result{
		Schema:    SchemaVersion,
		Tool:      "spade",
		Benchmark: "creat",
		Trials:    2,
		Cost:      1,
		Times: StageTimes{
			RecordingNS:      4_000_000,
			TransformationNS: 150_000,
			GeneralizationNS: 500_000,
			ClassificationNS: 200_000,
			ComparisonNS:     100_000,
			TotalNS:          4_750_000,
		},
		Target: &Graph{
			Nodes: []Node{
				{ID: "n1", Label: "Process", Props: map[string]string{"pid": "7"}},
				{ID: "n2", Label: "Artifact", Props: map[string]string{"path": "/x"}},
			},
			Edges: []Edge{
				{ID: "e1", Src: "n1", Tgt: "n2", Label: "WasGeneratedBy"},
			},
		},
		FG: &Graph{Nodes: []Node{{ID: "n1", Label: "Process"}}},
		BG: &Graph{},
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := sampleResult()
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the value:\nbefore: %+v\nafter:  %+v", r, back)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := sampleResult()
	a, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding is not deterministic:\n%s\n%s", a, b)
	}
}

func TestEncodeStampsZeroSchema(t *testing.T) {
	r := sampleResult()
	r.Schema = 0
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != 0 {
		t.Fatal("encode mutated its input")
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", back.Schema, SchemaVersion)
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"schema":1,"tool":"t","benchmark":"b","trials":1,"empty":false,"cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0},"bogus":1}`,
		"wrong schema":     `{"schema":99,"tool":"t","benchmark":"b","trials":1,"empty":false,"cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0}}`,
		"missing schema":   `{"tool":"t","benchmark":"b","trials":1,"empty":false,"cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0}}`,
		"trailing garbage": `{"schema":1,"tool":"t","benchmark":"b","trials":1,"empty":false,"cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0}} {}`,
		"not json":         `hello`,
		// Cross-field invariant: target present iff non-empty.
		"non-empty without target": `{"schema":1,"tool":"t","benchmark":"b","trials":1,"empty":false,"cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0}}`,
		"empty with target":        `{"schema":1,"tool":"t","benchmark":"b","trials":1,"empty":true,"reason":"x","cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0},"target":{}}`,
	}
	for name, in := range cases {
		if _, err := DecodeResult([]byte(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
}

func TestMatrixResultRoundTrip(t *testing.T) {
	m := &MatrixResult{
		Schema:    SchemaVersion,
		Index:     3,
		Tool:      "opus",
		Benchmark: "open",
		Cell:      "abc123",
		Cached:    true,
		Result:    sampleResult(),
	}
	data, err := EncodeMatrixResult(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMatrixResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip changed the value:\nbefore: %+v\nafter:  %+v", m, back)
	}
	// An error cell (no result) round trips too.
	e := &MatrixResult{Schema: SchemaVersion, Index: 0, Tool: "t", Benchmark: "b", Err: "boom"}
	data, err = EncodeMatrixResult(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err = DecodeMatrixResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Fatalf("error cell round trip changed the value: %+v vs %+v", e, back)
	}
	// A cell carries exactly one of result and err.
	if _, err := DecodeMatrixResult([]byte(`{"schema":1,"index":0,"tool":"t","benchmark":"b"}`)); err == nil {
		t.Error("cell with neither result nor err accepted")
	}
	both, _ := EncodeMatrixResult(&MatrixResult{Schema: SchemaVersion, Tool: "t", Benchmark: "b", Result: sampleResult(), Err: "boom"})
	if _, err := DecodeMatrixResult(both); err == nil {
		t.Error("cell with both result and err accepted")
	}
}

func TestJobSpecRoundTrip(t *testing.T) {
	filter := true
	s := &JobSpec{
		Schema:       SchemaVersion,
		Tools:        []string{"spade", "camflow"},
		Benchmarks:   []string{"creat"},
		Capture:      &CaptureOptions{Fast: true, Params: map[string]string{"versioning": "false"}},
		Trials:       4,
		Parallelism:  2,
		FilterGraphs: &filter,
		BGPair:       "largest",
		FGPair:       "smallest",
	}
	data, err := EncodeJobSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the value: %+v vs %+v", s, back)
	}
	// A minimal hand-written body without a schema field is accepted
	// and normalized to the current version.
	min, err := DecodeJobSpec([]byte(`{"tools":["spade"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if min.Schema != SchemaVersion || len(min.Tools) != 1 {
		t.Fatalf("minimal spec = %+v", min)
	}
	if _, err := DecodeJobSpec([]byte(`{"tools":["spade"],"nope":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Canonical encoding omits an all-default capture configuration,
	// and decoding collapses an explicit default one to absent.
	enc, err := EncodeJobSpec(&JobSpec{Tools: []string{"spade"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "capture") {
		t.Errorf("default capture not omitted: %s", enc)
	}
	norm, err := DecodeJobSpec([]byte(`{"tools":["spade"],"capture":{"fast":false}}`))
	if err != nil {
		t.Fatal(err)
	}
	if norm.Capture != nil {
		t.Errorf("default capture not collapsed to nil: %+v", norm.Capture)
	}
}

func TestJobSpecScenarios(t *testing.T) {
	spec := &JobSpec{
		Tools: []string{"spade"},
		Scenarios: []benchprog.Scenario{{
			Name: "pipe-probe",
			Steps: []benchprog.Instr{
				{Op: "pipe", SaveFD: "r", SaveFD2: "w"},
				{Op: "tee", FD: "r", FD2: "w", N: 4, Target: true},
			},
		}},
	}
	data, err := EncodeJobSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Name != "pipe-probe" {
		t.Fatalf("scenarios lost in round trip: %+v", back)
	}
	if !reflect.DeepEqual(back.Scenarios, spec.Scenarios) {
		t.Errorf("scenario round trip drift: %+v", back.Scenarios)
	}
	// Decoding normalizes inline scenarios (flag canonicalization),
	// so decoded specs hash stably.
	messy := []byte(`{"tools":["spade"],"scenarios":[{"name":"f","steps":[{"op":"open","path":"/etc/passwd","flags":["rdonly","trunc","wronly"],"errno":"EACCES","target":true}]}]}`)
	dec, err := DecodeJobSpec(messy)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Scenarios[0].Steps[0].Flags; !reflect.DeepEqual(got, []string{"wronly", "trunc"}) {
		t.Errorf("scenario flags not canonicalized: %v", got)
	}
	// Invalid inline scenarios are a decode error, not a latent fault.
	for _, bad := range []string{
		`{"tools":["spade"],"scenarios":[{"name":"x","steps":[{"op":"mount"}]}]}`,
		`{"tools":["spade"],"scenarios":[{"name":"x","steps":[{"op":"open","path":"/f","bogus":true}]}]}`,
		`{"tools":["spade"],"scenarios":[{"name":"x"}]}`,
	} {
		if _, err := DecodeJobSpec([]byte(bad)); err == nil {
			t.Errorf("accepted invalid scenario spec: %s", bad)
		}
	}
}

func TestJobStatusRoundTrip(t *testing.T) {
	s := &JobStatus{
		Schema:    SchemaVersion,
		ID:        "j1",
		State:     JobRunning,
		Total:     3,
		Completed: 1,
		Cells: []CellRef{
			{Cell: "k1", Tool: "spade", Benchmark: "creat", Done: true},
			{Cell: "k2", Tool: "spade", Benchmark: "open"},
		},
	}
	data, err := EncodeJobStatus(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJobStatus(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the value: %+v vs %+v", s, back)
	}
}

func TestGraphConversionRoundTrip(t *testing.T) {
	g := graph.New()
	p := g.AddNode("Process", graph.Properties{"pid": "42"})
	a := g.AddNode("Artifact", nil)
	if _, err := g.AddEdge(p, a, "Used", graph.Properties{"operation": "read"}); err != nil {
		t.Fatal(err)
	}
	w := FromGraph(g)
	back, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, back) {
		t.Fatalf("graph conversion round trip changed the graph:\n%s\nvs\n%s", g, back)
	}
	if w.String() != g.String() {
		t.Fatalf("wire String diverges from graph String:\n%q\nvs\n%q", w.String(), g.String())
	}
	if w.Summary() != graph.Summarize(g).String() {
		t.Fatalf("wire Summary %q != graph Summarize %q", w.Summary(), graph.Summarize(g))
	}
	if FromGraph(nil) != nil {
		t.Fatal("FromGraph(nil) != nil")
	}
	nilBuilt, err := (*Graph)(nil).Build()
	if err != nil || nilBuilt != nil {
		t.Fatalf("nil Build = %v, %v", nilBuilt, err)
	}
}

func TestBuildRejectsBadGraphs(t *testing.T) {
	bad := []*Graph{
		{Nodes: []Node{{ID: "n1", Label: "a"}, {ID: "n1", Label: "b"}}},
		{Nodes: []Node{{ID: "n1", Label: "a"}}, Edges: []Edge{{ID: "e1", Src: "n1", Tgt: "nope", Label: "x"}}},
		{Nodes: []Node{{ID: "n1", Label: "a"}}, Edges: []Edge{{ID: "n1", Src: "n1", Tgt: "n1", Label: "x"}}},
	}
	for i, w := range bad {
		if _, err := w.Build(); err == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
}

func TestCanonicalJSONShape(t *testing.T) {
	data, err := EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"schema":1`, `"times":{`, `"classification_ns":200000`, `"total_ns":4750000`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoding lacks %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, "\n") {
		t.Error("canonical encoding is not single-line")
	}
}
