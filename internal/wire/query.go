package wire

import (
	"encoding/json"
	"fmt"
)

// Query graph selectors: which graph of a stored cell result a query
// evaluates against. An absent selector means the benchmark (target)
// graph.
const (
	QueryGraphTarget = "target"
	QueryGraphFG     = "fg"
	QueryGraphBG     = "bg"
)

// QueryRequest asks provmarkd to evaluate a Datalog program against a
// stored cell's provenance — the Dora use case (matching
// suspicious-activity rules against recorded provenance) as a service
// call. Rules is the concrete rule syntax of internal/datalog (one
// rule per line, % comments); Goal is a single positive atom whose
// variable bindings are the answer.
type QueryRequest struct {
	Schema int    `json:"schema,omitempty"`
	Cell   string `json:"cell"`
	Graph  string `json:"graph,omitempty"`
	Rules  string `json:"rules,omitempty"`
	Goal   string `json:"goal"`
}

// QueryResponse carries the deterministic, sorted, deduplicated
// bindings of the goal atom. Matches always equals len(Bindings);
// Derived counts the facts the rule program derived on top of the
// graph's base facts. Diagnostics carries the static analyzer's
// findings for the submitted program: on a 422 rejection at least one
// has severity "error" and Matches is 0 (nothing was evaluated); on a
// 200 success they are warnings riding along with the answer.
type QueryResponse struct {
	Schema   int                 `json:"schema"`
	Cell     string              `json:"cell"`
	Goal     string              `json:"goal"`
	Matches  int                 `json:"matches"`
	Bindings []map[string]string `json:"bindings,omitempty"`
	Derived  int64               `json:"derived"`
	// Diagnostics are ordered by source position (line, then column).
	Diagnostics []QueryDiagnostic `json:"diagnostics,omitempty"`
}

// Diagnostic severities on the wire.
const (
	DiagWarning = "warning"
	DiagError   = "error"
)

// QueryDiagnostic is one static-analysis finding about the submitted
// rule program, positioned in the request's Rules text (1-based line
// and byte columns; a zero line means the finding is program-level,
// e.g. about the goal).
type QueryDiagnostic struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Message  string `json:"message"`
	Pred     string `json:"pred,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	EndCol   int    `json:"end_col,omitempty"`
}

func (d *QueryDiagnostic) validate() error {
	if d.Severity != DiagWarning && d.Severity != DiagError {
		return fmt.Errorf("diagnostic severity %q (want %q or %q)", d.Severity, DiagWarning, DiagError)
	}
	if d.Code == "" || d.Message == "" {
		return fmt.Errorf("diagnostic needs a code and a message")
	}
	return nil
}

// hasErrorDiagnostic reports whether any diagnostic is an error.
func (q *QueryResponse) hasErrorDiagnostic() bool {
	for i := range q.Diagnostics {
		if q.Diagnostics[i].Severity == DiagError {
			return true
		}
	}
	return false
}

func (q *QueryResponse) validate() error {
	if q.Matches != len(q.Bindings) {
		return fmt.Errorf("matches %d != %d bindings", q.Matches, len(q.Bindings))
	}
	for i := range q.Diagnostics {
		if err := q.Diagnostics[i].validate(); err != nil {
			return err
		}
	}
	// A rejected program was never evaluated: error diagnostics and
	// evaluation results are mutually exclusive.
	if q.hasErrorDiagnostic() && (q.Matches != 0 || q.Derived != 0) {
		return fmt.Errorf("error diagnostics with evaluation results (matches %d, derived %d)", q.Matches, q.Derived)
	}
	return nil
}

// EncodeQueryRequest renders the canonical JSON encoding of a query
// request (the "target" selector collapses to absent).
func EncodeQueryRequest(q *QueryRequest) ([]byte, error) {
	if q == nil {
		return nil, fmt.Errorf("wire: encode: nil query request")
	}
	v := *q
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode query request: %w", err)
	}
	if err := v.validate(); err != nil {
		return nil, fmt.Errorf("wire: encode query request: %w", err)
	}
	if v.Graph == QueryGraphTarget {
		v.Graph = ""
	}
	return json.Marshal(&v)
}

// DecodeQueryRequest strictly parses a query request. Like job specs,
// a zero schema version is accepted (hand-written client bodies may
// omit it) and normalized to the current version.
func DecodeQueryRequest(data []byte) (*QueryRequest, error) {
	var q QueryRequest
	if err := decodeStrict(data, &q); err != nil {
		return nil, fmt.Errorf("wire: decode query request: %w", err)
	}
	if q.Schema == 0 {
		q.Schema = SchemaVersion
	}
	if q.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode query request: unsupported schema version %d (want %d)", q.Schema, SchemaVersion)
	}
	if err := q.validate(); err != nil {
		return nil, fmt.Errorf("wire: decode query request: %w", err)
	}
	if q.Graph == QueryGraphTarget {
		q.Graph = "" // canonical form: the default selector is absent
	}
	return &q, nil
}

func (q *QueryRequest) validate() error {
	if q.Cell == "" {
		return fmt.Errorf("query needs a cell key")
	}
	if q.Goal == "" {
		return fmt.Errorf("query needs a goal atom")
	}
	switch q.Graph {
	case "", QueryGraphTarget, QueryGraphFG, QueryGraphBG:
		return nil
	}
	return fmt.Errorf("unknown graph selector %q (want target, fg or bg)", q.Graph)
}

// EncodeQueryResponse renders the canonical JSON encoding of a query
// response. Binding maps encode with sorted keys (encoding/json), so
// identical binding sets always produce identical bytes.
func EncodeQueryResponse(q *QueryResponse) ([]byte, error) {
	if q == nil {
		return nil, fmt.Errorf("wire: encode: nil query response")
	}
	v := *q
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode query response: %w", err)
	}
	if err := v.validate(); err != nil {
		return nil, fmt.Errorf("wire: encode query response: %w", err)
	}
	return json.Marshal(&v)
}

// DecodeQueryResponse strictly parses a query response.
func DecodeQueryResponse(data []byte) (*QueryResponse, error) {
	var q QueryResponse
	if err := decodeStrict(data, &q); err != nil {
		return nil, fmt.Errorf("wire: decode query response: %w", err)
	}
	if q.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode query response: unsupported schema version %d (want %d)", q.Schema, SchemaVersion)
	}
	if err := q.validate(); err != nil {
		return nil, fmt.Errorf("wire: decode query response: %w", err)
	}
	if len(q.Bindings) == 0 {
		q.Bindings = nil
	}
	return &q, nil
}
