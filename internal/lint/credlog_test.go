package lint_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"provmark/internal/lint"
)

// check parses one source snippet and runs the analyzer.
func check(t *testing.T, src string) []lint.Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return lint.CheckFile(fset, file)
}

func TestCredlogFlags(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // flagged identifiers, in order; empty = clean
	}{
		{
			name: "slog package call with raw token",
			src: `package p
import "log/slog"
func f(authToken string) { slog.Info("starting", "token", authToken) }`,
			want: []string{"authToken"},
		},
		{
			name: "attr constructor leaks too",
			src: `package p
import "log/slog"
func f(bearerToken string) []slog.Attr { return []slog.Attr{slog.String("h", bearerToken)} }`,
			want: []string{"bearerToken"},
		},
		{
			name: "logger method with header selector",
			src: `package p
import "net/http"
type logger struct{}
func (logger) LogAttrs(args ...any) {}
func f(l logger, r *http.Request) { l.LogAttrs("hdr", r.Header.Get("X"), r.AuthSecret) }`,
			want: []string{"AuthSecret"},
		},
		{
			name: "log package printf with password",
			src: `package p
import "log"
func f(password string) { log.Printf("login %s", password) }`,
			want: []string{"password"},
		},
		{
			name: "comparison is the sanctioned enabled-flag idiom",
			src: `package p
import "log/slog"
func f(authToken *string) { slog.Info("ready", slog.Bool("auth", *authToken != "")) }`,
		},
		{
			name: "sanitizer wrappers are exempt",
			src: `package p
import "log/slog"
func hashToken(s string) string { return s }
func f(apiKey string) { slog.Info("ready", "digest", hashToken(apiKey), "n", len(apiKey)) }`,
		},
		{
			name: "derived-name prefixes are exempt",
			src: `package p
import "log/slog"
func f(redactedToken string) { slog.Info("ready", "token", redactedToken) }`,
		},
		{
			name: "other packages are not sinks",
			src: `package p
import "fmt"
func f(secret string) error { fmt.Println(secret); return fmt.Errorf("bad %s", secret) }`,
		},
		{
			name: "non-logging method names are not sinks",
			src: `package p
func f(c interface{ SetAuthToken(string) }, token string) { c.SetAuthToken(token) }`,
		},
		{
			name: "renamed slog import still a sink",
			src: `package p
import l "log/slog"
func f(clientSecret string) { l.Warn("cfg", "s", clientSecret) }`,
			want: []string{"clientSecret"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings := check(t, tc.src)
			var got []string
			for _, f := range findings {
				got = append(got, f.Ident)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("findings = %v, want idents %v", findings, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestCredlogFindingString(t *testing.T) {
	findings := check(t, `package p
import "log/slog"
func f(authToken string) { slog.Info("x", "t", authToken) }`)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	s := findings[0].String()
	for _, want := range []string{"src.go:3:", `"authToken"`, "slog.Info", "[credlog]"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding %q lacks %q", s, want)
		}
	}
}

// TestCheckPatternsSkipsTests builds a throwaway tree: violations in
// regular files are reported sorted, while _test.go files and testdata
// directories stay invisible.
func TestCheckPatternsSkipsTests(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	const bad = `package p
import "log/slog"
func f(authToken string) { slog.Info("x", "t", authToken) }`
	write("a/leak.go", bad)
	write("a/leak_test.go", bad)
	write("a/testdata/fixture.go", bad)
	write("b/clean.go", "package q\n")
	findings, err := lint.CheckPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.HasSuffix(findings[0].Pos.Filename, filepath.Join("a", "leak.go")) {
		t.Fatalf("findings = %v, want exactly the non-test file", findings)
	}
	// A plain (non-recursive) pattern checks just that directory.
	findings, err = lint.CheckPatterns(root, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean dir findings = %v", findings)
	}
}

// TestRepoIsCredlogClean is the tree gate: the analyzer over the whole
// repository must report nothing. cmd/provmarkd's slog.Bool("auth",
// *authToken != "") is the sanctioned pattern this pins.
func TestRepoIsCredlogClean(t *testing.T) {
	findings, err := lint.CheckPatterns("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
