// Package lint holds the repo's own static checks, in the style of
// go/analysis but dependency-free (go/ast + go/parser only, so the
// checks build in hermetic environments without the analysis module).
//
// The one analyzer today is credlog: it flags slog/log calls whose
// arguments reference credential-named identifiers (authToken, bearer,
// Authorization headers, secrets, passwords), because a log line is the
// easiest way for a bearer token to leak into storage nobody audits.
// Comparisons (`*authToken != ""`) and sanitizer-wrapped values
// (`hash(token)`, `len(secret)`) are deliberately exempt: logging that
// auth is *enabled*, or a digest of the credential, is fine.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one credential-logging diagnostic.
type Finding struct {
	// Pos locates the offending identifier.
	Pos token.Position
	// Ident is the credential-named identifier reaching the log call.
	Ident string
	// Call is the logging callee as written, e.g. "slog.Info" or
	// "logger.LogAttrs".
	Call string
}

// String renders the finding in the conventional vet shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s: credential-named identifier %q reaches logging call %s [credlog]", f.Pos, f.Ident, f.Call)
}

// slogFuncs are the log/slog package-level functions (and attr
// constructors — a credential inside slog.String leaks just the same)
// treated as logging sinks.
var slogFuncs = map[string]bool{
	"Debug": true, "DebugContext": true,
	"Info": true, "InfoContext": true,
	"Warn": true, "WarnContext": true,
	"Error": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true, "With": true,
	"String": true, "Any": true, "Bool": true, "Int": true,
	"Int64": true, "Uint64": true, "Float64": true,
	"Time": true, "Duration": true, "Group": true,
}

// logFuncs are the standard log package's printing functions.
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// methodFuncs are method names that mark a call on a non-package
// receiver as a logger call (*slog.Logger and *log.Logger methods).
var methodFuncs = map[string]bool{
	"Debug": true, "DebugContext": true,
	"Info": true, "InfoContext": true,
	"Warn": true, "WarnContext": true,
	"Error": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true, "With": true,
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// credWords mark an identifier as credential-carrying when they appear
// anywhere in its lowercased name.
var credWords = []string{"token", "bearer", "authorization", "credential", "secret", "passwd", "password", "apikey"}

// safePrefixes exempt identifiers that advertise a derived, loggable
// form of the credential.
var safePrefixes = []string{"hashed", "masked", "redacted", "scrubbed", "sanitized"}

// sanitizers exempt call wrappers whose name promises the raw value
// does not survive the call.
var sanitizers = []string{"hash", "redact", "mask", "sanitize", "scrub", "len"}

// credNamed reports whether an identifier names a raw credential.
func credNamed(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range safePrefixes {
		if strings.HasPrefix(lower, p) {
			return false
		}
	}
	for _, w := range credWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// sanitizing reports whether a callee name neutralizes its argument.
func sanitizing(name string) bool {
	lower := strings.ToLower(name)
	for _, s := range sanitizers {
		if strings.HasPrefix(lower, s) {
			return true
		}
	}
	return false
}

// CheckFile runs the credlog analyzer over one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File) []Finding {
	// Map package-qualified selectors: only calls through the slog and
	// log imports count as package-level sinks; any other package ident
	// (fmt, errors, ...) is not a logging call no matter the name.
	pkgNames := map[string]string{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		pkgNames[name] = path
	}
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, isSink := loggingCallee(call, pkgNames)
		if !isSink {
			return true
		}
		for _, arg := range call.Args {
			findings = append(findings, scanArg(fset, callee, arg)...)
		}
		return true
	})
	return findings
}

// loggingCallee classifies a call expression: ("slog.Info", true) for
// a sink, ("", false) otherwise.
func loggingCallee(call *ast.CallExpr, pkgNames map[string]string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if recv, ok := sel.X.(*ast.Ident); ok {
		if path, imported := pkgNames[recv.Name]; imported {
			switch {
			case path == "log/slog" && slogFuncs[name]:
				return recv.Name + "." + name, true
			case path == "log" && logFuncs[name]:
				return recv.Name + "." + name, true
			}
			// A call through any other package is not a logging sink.
			return "", false
		}
		if methodFuncs[name] {
			return recv.Name + "." + name, true
		}
		return "", false
	}
	if methodFuncs[name] {
		return "(...)." + name, true
	}
	return "", false
}

// scanArg walks one call argument for credential-named identifiers,
// pruning comparison expressions (logging *whether* a token is set is
// fine) and sanitizer wrappers (logging a digest is fine).
func scanArg(fset *token.FileSet, callee string, arg ast.Expr) []Finding {
	var findings []Finding
	ast.Inspect(arg, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			switch node.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				return false
			}
		case *ast.CallExpr:
			if sanitizing(calleeBaseName(node)) {
				return false
			}
		case *ast.Ident:
			if credNamed(node.Name) {
				findings = append(findings, Finding{
					Pos:   fset.Position(node.Pos()),
					Ident: node.Name,
					Call:  callee,
				})
			}
		}
		return true
	})
	return findings
}

// calleeBaseName extracts the final name of a call's callee:
// "redactToken" for both redactToken(x) and auth.redactToken(x).
func calleeBaseName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// CheckDir parses every non-test .go file in one directory (no
// recursion) and runs the analyzer over each.
func CheckDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		findings = append(findings, CheckFile(fset, file)...)
	}
	return findings, nil
}

// CheckPatterns expands go-style package patterns relative to root —
// "./..." recurses, a plain path names one directory — and runs the
// analyzer over every matched directory, skipping testdata, vendor,
// and hidden trees. Findings come back sorted by position.
func CheckPatterns(root string, patterns []string) ([]Finding, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		base, recurse := strings.CutSuffix(pat, "...")
		base = filepath.Join(root, strings.TrimSuffix(base, "/"))
		if !recurse {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return fs.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var findings []Finding
	for dir := range dirs {
		fs, err := CheckDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
