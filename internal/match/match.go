// Package match implements the graph-matching operations of ProvMark's
// generalization and comparison stages by grounding them into the asp
// package's program class:
//
//   - Similar: property-graph similarity (Listing 3 without properties) —
//     an exact isomorphism on structure and labels;
//   - GeneralizePair: similarity plus #minimize over property mismatches;
//     the result keeps only properties whose values agree across the
//     matched pair (volatile data such as timestamps is discarded);
//   - SubgraphEmbed: approximate subgraph isomorphism (Listing 4) —
//     an injective label/endpoint-preserving embedding of the background
//     graph into the foreground graph minimizing mismatched properties;
//   - Subtract: removes the embedded background from the foreground,
//     retaining dummy nodes for pre-existing endpoints of result edges.
//
// # Fingerprint-then-confirm contract
//
// Similar consults graph.ShapeFingerprint before any search. The
// fingerprint check is a necessary-condition filter only: unequal
// fingerprints prove non-similarity, but equal fingerprints never
// certify similarity — a confirming engine always has the final word.
// The confirmer is the forced-mapping verifier when the WL refinement
// is discrete on both graphs (the colour-respecting candidate mapping
// is unique, so an O(V+E) verification decides the pair without any
// search), and otherwise the ASP solver. SimilarASP and SimilarDirect
// are confirmation engines that bypass the fingerprint filter entirely;
// the differential test harness asserts all decision paths agree.
package match

import (
	"errors"
	"fmt"

	"provmark/internal/asp"
	"provmark/internal/graph"
)

// Mapping maps elements of G1 (nodes and edges) to elements of G2.
type Mapping map[graph.ElemID]graph.ElemID

// ErrNotSimilar is returned when no structure/label isomorphism exists.
var ErrNotSimilar = errors.New("match: graphs are not similar")

// ErrNoEmbedding is returned when the background graph cannot be
// embedded in the foreground graph. The paper assumes provenance
// recording is monotonic so this indicates a failed/garbled trial.
var ErrNoEmbedding = errors.New("match: no subgraph embedding exists")

// encoding records, for each asp group, which G1 element it stands for,
// and for each atom, which G2 element its Y names.
type encoding struct {
	problem *asp.Problem
	groupOf []graph.ElemID // group index -> G1 element
	yOf     [][]graph.ElemID
	atomIDs [][]asp.AtomID
}

func (enc *encoding) decode(sol *asp.Solution) Mapping {
	m := make(Mapping, len(enc.groupOf))
	for gi, a := range sol.Selected {
		at := enc.problem.Atom(a)
		m[enc.groupOf[gi]] = graph.ElemID(at.Y)
	}
	return m
}

// Similar reports whether g1 and g2 are similar (same shape and labels,
// properties ignored) and returns a witnessing isomorphism. It is the
// production decision path: cheap invariants first (counts, label
// multisets, memoized shape fingerprints — necessary conditions only),
// then the forced-mapping verifier when the WL colouring is discrete,
// and the ASP solver only when symmetry leaves a genuine choice.
func Similar(g1, g2 *graph.Graph) (Mapping, bool) {
	if !sameShape(g1, g2) {
		return nil, false
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		return nil, false
	}
	if m, ok, decided := similarForced(g1, g2); decided {
		return m, ok
	}
	return solveIso(g1, g2)
}

// SimilarASP decides similarity purely through the ASP solver (after
// the trivially sound count/label prechecks). It never consults shape
// fingerprints, making it an independent oracle for the differential
// harness and the faithful reproduction of the paper's clingo path.
func SimilarASP(g1, g2 *graph.Graph) (Mapping, bool) {
	if !sameShape(g1, g2) {
		return nil, false
	}
	return solveIso(g1, g2)
}

// sameShape checks the trivially sound similarity preconditions:
// element counts and label multisets.
func sameShape(g1, g2 *graph.Graph) bool {
	return g1.NumNodes() == g2.NumNodes() &&
		g1.NumEdges() == g2.NumEdges() &&
		graph.SameLabelCounts(g1, g2)
}

// solveIso grounds Listing 3 and runs the ASP solver.
func solveIso(g1, g2 *graph.Graph) (Mapping, bool) {
	enc, err := encodeIso(g1, g2, nil)
	if err != nil {
		return nil, false
	}
	sol, err := enc.problem.Solve()
	if err != nil {
		return nil, false
	}
	return enc.decode(sol), true
}

// GeneralizePair finds the structure isomorphism between two similar
// graphs that minimizes property disagreements, then returns a copy of
// g1 with every disagreeing property removed. This implements the
// generalization stage: the surviving properties are those invariant
// across trials.
func GeneralizePair(g1, g2 *graph.Graph) (*graph.Graph, Mapping, error) {
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() || !graph.SameLabelCounts(g1, g2) {
		return nil, nil, ErrNotSimilar
	}
	enc, err := encodeIso(g1, g2, propDiffWeight)
	if err != nil {
		return nil, nil, ErrNotSimilar
	}
	sol, err := enc.problem.SolveMin()
	if err != nil {
		return nil, nil, ErrNotSimilar
	}
	m := enc.decode(sol)
	out := g1.Clone()
	for _, n := range g1.Nodes() {
		keepCommonProps(out, n.ID, n.Props, elemProps(g2, m[n.ID]))
	}
	for _, e := range g1.Edges() {
		keepCommonProps(out, e.ID, e.Props, elemProps(g2, m[e.ID]))
	}
	return out, m, nil
}

// SubgraphEmbed finds a minimum-property-cost injective embedding of bg
// into fg (Listing 4) and returns the mapping plus its cost.
func SubgraphEmbed(bg, fg *graph.Graph) (Mapping, int, error) {
	if bg.NumNodes() > fg.NumNodes() || bg.NumEdges() > fg.NumEdges() {
		return nil, 0, ErrNoEmbedding
	}
	enc, err := encodeSubgraph(bg, fg)
	if err != nil {
		return nil, 0, ErrNoEmbedding
	}
	sol, err := enc.problem.SolveMin()
	if err != nil {
		return nil, 0, ErrNoEmbedding
	}
	return enc.decode(sol), sol.Cost, nil
}

// Subtract removes the matched image of bg from fg. The remaining nodes
// and edges form the benchmark result; any result edge whose endpoint
// was part of the background is re-attached to a dummy node (the paper's
// green/gray nodes standing for pre-existing graph parts).
func Subtract(fg *graph.Graph, m Mapping) *graph.Graph {
	matched := make(map[graph.ElemID]bool, len(m))
	for _, y := range m {
		matched[y] = true
	}
	out := graph.New()
	dummies := make(map[graph.ElemID]graph.ElemID)
	for _, n := range fg.Nodes() {
		if !matched[n.ID] {
			mustInsertNode(out, n.ID, n.Label, n.Props)
		}
	}
	dummyFor := func(id graph.ElemID) graph.ElemID {
		if d, ok := dummies[id]; ok {
			return d
		}
		orig := fg.Node(id)
		d := graph.ElemID("dummy_" + string(id))
		mustInsertNode(out, d, "dummy", graph.Properties{"stands_for": orig.Label})
		dummies[id] = d
		return d
	}
	for _, e := range fg.Edges() {
		if matched[e.ID] {
			continue
		}
		src, tgt := e.Src, e.Tgt
		if matched[src] {
			src = dummyFor(src)
		}
		if matched[tgt] {
			tgt = dummyFor(tgt)
		}
		if err := out.InsertEdge(e.ID, src, tgt, e.Label, e.Props); err != nil {
			panic("match: subtract: " + err.Error()) // ids copied from fg cannot collide
		}
	}
	return out
}

func mustInsertNode(g *graph.Graph, id graph.ElemID, label string, props graph.Properties) {
	if err := g.InsertNode(id, label, props); err != nil {
		panic("match: " + err.Error())
	}
}

// weightFunc scores a candidate pair of property dictionaries.
type weightFunc func(a, b graph.Properties) int

// propDiffWeight counts keys whose values disagree or exist on only one
// side — the generalization objective.
func propDiffWeight(a, b graph.Properties) int {
	w := 0
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			w++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			w++
		}
	}
	return w
}

// subgraphCost counts properties of the background element with no
// exactly matching property on the foreground element — Listing 4's
// cost/3 definition (missing key costs 1, differing value costs 1).
func subgraphCost(bgProps, fgProps graph.Properties) int {
	w := 0
	for k, v := range bgProps {
		if fv, ok := fgProps[k]; !ok || fv != v {
			w++
		}
	}
	return w
}

func elemProps(g *graph.Graph, id graph.ElemID) graph.Properties {
	if n := g.Node(id); n != nil {
		return n.Props
	}
	if e := g.Edge(id); e != nil {
		return e.Props
	}
	return nil
}

func keepCommonProps(out *graph.Graph, id graph.ElemID, mine, theirs graph.Properties) {
	for k, v := range mine {
		if tv, ok := theirs[k]; !ok || tv != v {
			out.DeleteProp(id, k)
		}
	}
}

// encodeIso grounds Listing 3 (full isomorphism with optional weights).
// WL-colour pruning is sound here: any label-preserving isomorphism maps
// nodes to nodes of the same refined colour.
func encodeIso(g1, g2 *graph.Graph, wf weightFunc) (*encoding, error) {
	c1 := graph.WLColors(g1, graph.CanonRounds)
	c2 := graph.WLColors(g2, graph.CanonRounds)
	p := asp.NewProblem()
	enc := &encoding{problem: p}

	nodeAtom := make(map[[2]graph.ElemID]asp.AtomID)
	usedBy := make(map[graph.ElemID][]asp.AtomID) // G2 element -> atoms mapping onto it

	for _, n1 := range g1.Nodes() {
		gi := p.AddGroup("node " + string(n1.ID))
		enc.groupOf = append(enc.groupOf, n1.ID)
		any := false
		for _, n2 := range g2.Nodes() {
			if n1.Label != n2.Label || c1[n1.ID] != c2[n2.ID] {
				continue
			}
			w := 0
			if wf != nil {
				w = wf(n1.Props, n2.Props)
			}
			a := p.AddAtom(gi, string(n1.ID), string(n2.ID), w)
			nodeAtom[[2]graph.ElemID{n1.ID, n2.ID}] = a
			usedBy[n2.ID] = append(usedBy[n2.ID], a)
			any = true
		}
		if !any {
			return nil, fmt.Errorf("node %s has no candidates", n1.ID)
		}
	}
	for _, e1 := range g1.Edges() {
		gi := p.AddGroup("edge " + string(e1.ID))
		enc.groupOf = append(enc.groupOf, e1.ID)
		any := false
		for _, e2 := range g2.Edges() {
			if e1.Label != e2.Label {
				continue
			}
			sa, okS := nodeAtom[[2]graph.ElemID{e1.Src, e2.Src}]
			ta, okT := nodeAtom[[2]graph.ElemID{e1.Tgt, e2.Tgt}]
			if !okS || !okT {
				continue
			}
			w := 0
			if wf != nil {
				w = wf(e1.Props, e2.Props)
			}
			a := p.AddAtom(gi, string(e1.ID), string(e2.ID), w)
			usedBy[e2.ID] = append(usedBy[e2.ID], a)
			p.AddImplication(a, sa)
			p.AddImplication(a, ta)
			any = true
		}
		if !any {
			return nil, fmt.Errorf("edge %s has no candidates", e1.ID)
		}
	}
	addInjectivity(p, usedBy)
	return enc, nil
}

// encodeSubgraph grounds Listing 4. WL pruning is unsound for subgraph
// embedding (the foreground has extra structure), so candidates are
// filtered only by label and per-label degree bounds.
func encodeSubgraph(bg, fg *graph.Graph) (*encoding, error) {
	p := asp.NewProblem()
	enc := &encoding{problem: p}

	degOK := func(x *graph.Node, y *graph.Node) bool {
		// Every edge label incident to x must be at least as frequent at y.
		need := map[string]int{}
		for _, e := range bg.Edges() {
			if e.Src == x.ID {
				need[">"+e.Label]++
			}
			if e.Tgt == x.ID {
				need["<"+e.Label]++
			}
		}
		have := map[string]int{}
		for _, e := range fg.Edges() {
			if e.Src == y.ID {
				have[">"+e.Label]++
			}
			if e.Tgt == y.ID {
				have["<"+e.Label]++
			}
		}
		for k, v := range need {
			if have[k] < v {
				return false
			}
		}
		return true
	}

	nodeAtom := make(map[[2]graph.ElemID]asp.AtomID)
	usedBy := make(map[graph.ElemID][]asp.AtomID)

	for _, n1 := range bg.Nodes() {
		gi := p.AddGroup("node " + string(n1.ID))
		enc.groupOf = append(enc.groupOf, n1.ID)
		any := false
		for _, n2 := range fg.Nodes() {
			if n1.Label != n2.Label || !degOK(n1, n2) {
				continue
			}
			a := p.AddAtom(gi, string(n1.ID), string(n2.ID), subgraphCost(n1.Props, n2.Props))
			nodeAtom[[2]graph.ElemID{n1.ID, n2.ID}] = a
			usedBy[n2.ID] = append(usedBy[n2.ID], a)
			any = true
		}
		if !any {
			return nil, fmt.Errorf("node %s has no candidates", n1.ID)
		}
	}
	for _, e1 := range bg.Edges() {
		gi := p.AddGroup("edge " + string(e1.ID))
		enc.groupOf = append(enc.groupOf, e1.ID)
		any := false
		for _, e2 := range fg.Edges() {
			if e1.Label != e2.Label {
				continue
			}
			sa, okS := nodeAtom[[2]graph.ElemID{e1.Src, e2.Src}]
			ta, okT := nodeAtom[[2]graph.ElemID{e1.Tgt, e2.Tgt}]
			if !okS || !okT {
				continue
			}
			a := p.AddAtom(gi, string(e1.ID), string(e2.ID), subgraphCost(e1.Props, e2.Props))
			usedBy[e2.ID] = append(usedBy[e2.ID], a)
			p.AddImplication(a, sa)
			p.AddImplication(a, ta)
			any = true
		}
		if !any {
			return nil, fmt.Errorf("edge %s has no candidates", e1.ID)
		}
	}
	addInjectivity(p, usedBy)
	return enc, nil
}

// addInjectivity adds pairwise conflicts between atoms sharing a target
// element (the :- X<>Y, h(X,Z), h(Y,Z) rules).
func addInjectivity(p *asp.Problem, usedBy map[graph.ElemID][]asp.AtomID) {
	for _, atoms := range usedBy {
		for i := 0; i < len(atoms); i++ {
			for j := i + 1; j < len(atoms); j++ {
				if p.Atom(atoms[i]).Group != p.Atom(atoms[j]).Group {
					p.AddConflict(atoms[i], atoms[j])
				}
			}
		}
	}
}
