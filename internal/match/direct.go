package match

import (
	"sort"

	"provmark/internal/graph"
)

// SimilarDirect is a hand-rolled VF2-style backtracking similarity check
// used as an ablation baseline and as an independent oracle for the
// ASP-encoded path: tests assert both engines agree on every pipeline
// matching decision.
func SimilarDirect(g1, g2 *graph.Graph) (Mapping, bool) {
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		return nil, false
	}
	if !graph.SameLabelCounts(g1, g2) {
		return nil, false
	}
	c1 := graph.WLColors(g1, graph.CanonRounds)
	c2 := graph.WLColors(g2, graph.CanonRounds)

	// Candidate sets per G1 node, ordered smallest-first for fail-fast.
	nodes1 := g1.Nodes()
	cands := make(map[graph.ElemID][]graph.ElemID, len(nodes1))
	for _, n1 := range nodes1 {
		for _, n2 := range g2.Nodes() {
			if n1.Label == n2.Label && c1[n1.ID] == c2[n2.ID] {
				cands[n1.ID] = append(cands[n1.ID], n2.ID)
			}
		}
		if len(cands[n1.ID]) == 0 {
			return nil, false
		}
	}
	sort.SliceStable(nodes1, func(i, j int) bool {
		return len(cands[nodes1[i].ID]) < len(cands[nodes1[j].ID])
	})

	assign := make(Mapping, g1.Size())
	used := make(map[graph.ElemID]bool, g2.NumNodes())

	// consistent checks that every edge between already-assigned nodes
	// has a counterpart with the right label, in both directions.
	edgeIndex := buildEdgeIndex(g2)
	consistent := func(x, y graph.ElemID) bool {
		for _, e := range g1.Edges() {
			var wantSrc, wantTgt graph.ElemID
			switch {
			case e.Src == x && e.Tgt == x:
				wantSrc, wantTgt = y, y
			case e.Src == x:
				t, ok := assign[e.Tgt]
				if !ok {
					continue
				}
				wantSrc, wantTgt = y, t
			case e.Tgt == x:
				s, ok := assign[e.Src]
				if !ok {
					continue
				}
				wantSrc, wantTgt = s, y
			default:
				continue
			}
			if edgeIndex[edgeKey{wantSrc, wantTgt, e.Label}] == 0 {
				return false
			}
		}
		return true
	}

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(nodes1) {
			return true
		}
		x := nodes1[i].ID
		for _, y := range cands[x] {
			if used[y] || !consistent(x, y) {
				continue
			}
			assign[x] = y
			used[y] = true
			if rec(i + 1) {
				return true
			}
			delete(assign, x)
			used[y] = false
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	// Extend the node mapping to edges (must be a bijection on edges too;
	// counts were checked upfront and endpoints are consistent).
	usedEdges := make(map[graph.ElemID]bool, g2.NumEdges())
	for _, e1 := range g1.Edges() {
		found := false
		for _, e2 := range g2.Edges() {
			if usedEdges[e2.ID] || e2.Label != e1.Label {
				continue
			}
			if e2.Src == assign[e1.Src] && e2.Tgt == assign[e1.Tgt] {
				assign[e1.ID] = e2.ID
				usedEdges[e2.ID] = true
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return assign, true
}

type edgeKey struct {
	src, tgt graph.ElemID
	label    string
}

func buildEdgeIndex(g *graph.Graph) map[edgeKey]int {
	idx := make(map[edgeKey]int, g.NumEdges())
	for _, e := range g.Edges() {
		idx[edgeKey{e.Src, e.Tgt, e.Label}]++
	}
	return idx
}

// VerifyMapping checks that m is a valid label/endpoint-preserving
// injective mapping from g1 into g2 covering every element of g1. Used
// by property-based tests.
func VerifyMapping(g1, g2 *graph.Graph, m Mapping) bool {
	seen := make(map[graph.ElemID]bool, len(m))
	for _, n := range g1.Nodes() {
		y, ok := m[n.ID]
		if !ok || seen[y] {
			return false
		}
		seen[y] = true
		n2 := g2.Node(y)
		if n2 == nil || n2.Label != n.Label {
			return false
		}
	}
	for _, e := range g1.Edges() {
		y, ok := m[e.ID]
		if !ok || seen[y] {
			return false
		}
		seen[y] = true
		e2 := g2.Edge(y)
		if e2 == nil || e2.Label != e.Label {
			return false
		}
		if m[e.Src] != e2.Src || m[e.Tgt] != e2.Tgt {
			return false
		}
	}
	return true
}
