package match

import (
	"provmark/internal/asp"
	"provmark/internal/graph"
)

// EnumerateIsomorphisms visits structure/label isomorphisms from g1 to
// g2 up to limit (limit <= 0 means all) and returns how many were
// found. It is the building block the paper's future-work discussion
// of nondeterministic activity needs: grouping the distinct graph
// structures a concurrent program can produce requires knowing all the
// ways two trial graphs align, not just one.
func EnumerateIsomorphisms(g1, g2 *graph.Graph, limit int, fn func(Mapping) bool) int {
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		return 0
	}
	if !graph.SameLabelCounts(g1, g2) {
		return 0
	}
	enc, err := encodeIso(g1, g2, nil)
	if err != nil {
		return 0
	}
	return enc.problem.SolveAll(limit, func(sol *asp.Solution) bool {
		return fn(enc.decode(sol))
	})
}

// CountAutomorphisms counts the label-preserving automorphisms of a
// graph, up to limit. Symmetric provenance structures (e.g. n identical
// files created by one process) have n! automorphisms, which is exactly
// what makes the matching problems hard — the count quantifies instance
// symmetry for the scalability analysis.
func CountAutomorphisms(g *graph.Graph, limit int) int {
	return EnumerateIsomorphisms(g, g, limit, func(Mapping) bool { return true })
}
