package match

import (
	"provmark/internal/graph"
)

// similarForced decides similarity without search when the WL
// refinement is discrete (every node has a unique colour) on both
// graphs. Any label-preserving isomorphism must map each node to a node
// of equal refined colour, so a discrete colouring forces a unique
// candidate mapping; verifying that mapping in O(V+E) decides the pair
// both ways:
//
//   - the forced mapping is an isomorphism -> similar, with witness;
//   - the forced mapping fails (missing colour, label clash, edge
//     mismatch) -> no isomorphism can exist.
//
// When either colouring has a repeated colour the pair is left
// undecided (decided=false) and the caller falls back to the solver.
// Callers must have checked node/edge counts beforehand.
func similarForced(g1, g2 *graph.Graph) (m Mapping, ok, decided bool) {
	c1 := graph.WLColors(g1, graph.CanonRounds)
	c2 := graph.WLColors(g2, graph.CanonRounds)

	byColor2 := make(map[string]graph.ElemID, g2.NumNodes())
	for _, n := range g2.Nodes() {
		if _, dup := byColor2[c2[n.ID]]; dup {
			return nil, false, false
		}
		byColor2[c2[n.ID]] = n.ID
	}
	seen1 := make(map[string]bool, g1.NumNodes())
	for _, n := range g1.Nodes() {
		if seen1[c1[n.ID]] {
			return nil, false, false
		}
		seen1[c1[n.ID]] = true
	}

	// Both colourings are discrete; the colour-respecting mapping is
	// forced and injective (equal node counts were checked upfront).
	m = make(Mapping, g1.Size())
	for _, n := range g1.Nodes() {
		y, found := byColor2[c1[n.ID]]
		if !found || g2.Node(y).Label != n.Label {
			return nil, false, true
		}
		m[n.ID] = y
	}

	// Verify and extend to edges: each g1 edge must consume a distinct
	// g2 edge between the mapped endpoints with the same label. Equal
	// edge counts make the consumed set a bijection.
	idx := make(map[edgeKey][]graph.ElemID, g2.NumEdges())
	for _, e := range g2.Edges() {
		k := edgeKey{e.Src, e.Tgt, e.Label}
		idx[k] = append(idx[k], e.ID)
	}
	for _, e := range g1.Edges() {
		k := edgeKey{m[e.Src], m[e.Tgt], e.Label}
		q := idx[k]
		if len(q) == 0 {
			return nil, false, true
		}
		m[e.ID] = q[len(q)-1]
		idx[k] = q[:len(q)-1]
	}
	return m, true, true
}
