package match

import (
	"testing"

	"provmark/internal/graph"
)

// These tests pin the correspondence between the asp.Problem encodings
// and the paper's listings on instances small enough to verify by hand.

// TestListing4CostSemantics checks the three cost/3 rules: matched
// property costs 0, differing value costs 1, missing key costs 1;
// properties present only on the foreground element are free.
func TestListing4CostSemantics(t *testing.T) {
	bg := graph.New()
	bg.AddNode("X", graph.Properties{"same": "v", "diff": "a", "missing": "m"})
	fg := graph.New()
	fg.AddNode("X", graph.Properties{"same": "v", "diff": "b", "extra": "e"})
	_, cost, err := SubgraphEmbed(bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	// diff (1) + missing (1); same costs 0 and fg-only extra is free.
	if cost != 2 {
		t.Errorf("cost = %d, want 2", cost)
	}
}

// TestListing3Bijectivity: similarity must be a bijection, so graphs
// with equal label multisets but unequal sizes per colour class fail.
func TestListing3Bijectivity(t *testing.T) {
	// g: two isolated A nodes plus A->A edge pair... simplest: sizes
	// already filtered; exercise the injectivity constraints instead.
	g := graph.New()
	a1 := g.AddNode("A", nil)
	a2 := g.AddNode("A", nil)
	b := g.AddNode("B", nil)
	if _, err := g.AddEdge(a1, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a2, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	m, ok := Similar(g, h)
	if !ok {
		t.Fatal("clone not similar")
	}
	// Injectivity: the two A nodes must map to distinct targets.
	if m[a1] == m[a2] {
		t.Error("injectivity violated")
	}
}

// TestListing3EndpointPreservation: an edge may only map to an edge
// whose endpoints are the images of its own endpoints.
func TestListing3EndpointPreservation(t *testing.T) {
	g := graph.New()
	ga := g.AddNode("A", nil)
	gb := g.AddNode("B", nil)
	ge, err := g.AddEdge(ga, gb, "E", nil)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	m, ok := Similar(g, h)
	if !ok {
		t.Fatal("clone not similar")
	}
	he := h.Edge(m[ge])
	if he.Src != m[ga] || he.Tgt != m[gb] {
		t.Error("endpoint preservation violated")
	}
}

// TestGeneralizationMinimizesTotalDiffs: the generalization objective
// counts disagreements in both directions (symmetric difference).
func TestGeneralizationMinimizesTotalDiffs(t *testing.T) {
	if w := propDiffWeight(
		graph.Properties{"a": "1", "b": "2"},
		graph.Properties{"a": "1", "c": "3"},
	); w != 2 { // b missing on right, c missing on left
		t.Errorf("weight = %d, want 2", w)
	}
	if w := propDiffWeight(
		graph.Properties{"a": "1"},
		graph.Properties{"a": "2"},
	); w != 1 {
		t.Errorf("weight = %d, want 1", w)
	}
	if w := propDiffWeight(nil, nil); w != 0 {
		t.Errorf("weight = %d, want 0", w)
	}
}

// TestEncodingRendersAsASP: the ground problem renders in clingo-like
// syntax mirroring the listings' h/2 vocabulary.
func TestEncodingRendersAsASP(t *testing.T) {
	bg := graph.New()
	a := bg.AddNode("A", graph.Properties{"k": "v"})
	b := bg.AddNode("B", nil)
	if _, err := bg.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	fg := bg.Clone()
	enc, err := encodeSubgraph(bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	out := enc.problem.Render()
	for _, want := range []string{"{ h(n1,n1) } = 1", ":- h(e1,e1), not h(n1,n1)."} {
		if !containsStr(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
