package match

import (
	"testing"

	"provmark/internal/graph"
)

// star builds one hub with n identical leaves.
func star(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	hub := g.AddNode("Hub", nil)
	for i := 0; i < n; i++ {
		leaf := g.AddNode("Leaf", nil)
		if _, err := g.AddEdge(hub, leaf, "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestCountAutomorphismsStar(t *testing.T) {
	// n identical leaves: n! automorphisms.
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		if got := CountAutomorphisms(star(t, n), 0); got != want {
			t.Errorf("star(%d): %d automorphisms, want %d", n, got, want)
		}
	}
}

func TestCountAutomorphismsCycle(t *testing.T) {
	// Directed cycle of n identical nodes: n rotations.
	g := graph.New()
	var ids []graph.ElemID
	const n = 5
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode("N", nil))
	}
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(ids[i], ids[(i+1)%n], "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := CountAutomorphisms(g, 0); got != n {
		t.Errorf("cycle(%d): %d automorphisms, want %d", n, got, n)
	}
}

func TestCountAutomorphismsRigidPath(t *testing.T) {
	g := chain(t, "A", "B", "C")
	if got := CountAutomorphisms(g, 0); got != 1 {
		t.Errorf("path: %d automorphisms, want 1", got)
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	g := star(t, 4) // 24 automorphisms
	if got := CountAutomorphisms(g, 5); got != 5 {
		t.Errorf("limited count = %d, want 5", got)
	}
	calls := 0
	EnumerateIsomorphisms(g, g, 0, func(Mapping) bool {
		calls++
		return calls < 3 // early stop via callback
	})
	if calls != 3 {
		t.Errorf("callback stop: %d calls, want 3", calls)
	}
}

func TestEnumerateValidatesEveryMapping(t *testing.T) {
	g := star(t, 3)
	h := star(t, 3)
	n := EnumerateIsomorphisms(g, h, 0, func(m Mapping) bool {
		if !VerifyMapping(g, h, m) {
			t.Error("invalid mapping enumerated")
		}
		return true
	})
	if n != 6 {
		t.Errorf("enumerated %d isomorphisms, want 6", n)
	}
}

func TestEnumerateDissimilar(t *testing.T) {
	if n := EnumerateIsomorphisms(star(t, 2), star(t, 3), 0, func(Mapping) bool { return true }); n != 0 {
		t.Errorf("dissimilar graphs enumerated %d isomorphisms", n)
	}
}
