package match

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"provmark/internal/graph"
)

// chain builds a labelled path graph a->b->c... with given labels.
func chain(t *testing.T, labels ...string) *graph.Graph {
	t.Helper()
	g := graph.New()
	var prev graph.ElemID
	for i, l := range labels {
		id := g.AddNode(l, nil)
		if i > 0 {
			if _, err := g.AddEdge(prev, id, "E", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return g
}

func TestSimilarPositive(t *testing.T) {
	g := chain(t, "A", "B", "C")
	h := chain(t, "A", "B", "C")
	m, ok := Similar(g, h)
	if !ok {
		t.Fatal("identical chains not similar")
	}
	if !VerifyMapping(g, h, m) {
		t.Error("returned mapping is invalid")
	}
}

func TestSimilarIgnoresProperties(t *testing.T) {
	g := chain(t, "A", "B")
	h := chain(t, "A", "B")
	if err := g.SetProp(g.Nodes()[0].ID, "volatile", "123"); err != nil {
		t.Fatal(err)
	}
	if _, ok := Similar(g, h); !ok {
		t.Error("property difference broke similarity")
	}
}

func TestSimilarNegativeLabel(t *testing.T) {
	g := chain(t, "A", "B")
	h := chain(t, "A", "C")
	if _, ok := Similar(g, h); ok {
		t.Error("different labels reported similar")
	}
}

func TestSimilarNegativeStructure(t *testing.T) {
	// Same label multiset, different wiring: a->b,c  vs  a->b->c.
	g := graph.New()
	a := g.AddNode("N", nil)
	b := g.AddNode("N", nil)
	c := g.AddNode("N", nil)
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, c)
	h := graph.New()
	ha := h.AddNode("N", nil)
	hb := h.AddNode("N", nil)
	hc := h.AddNode("N", nil)
	mustEdge(t, h, ha, hb)
	mustEdge(t, h, hb, hc)
	if _, ok := Similar(g, h); ok {
		t.Error("different shapes reported similar")
	}
}

func mustEdge(t *testing.T, g *graph.Graph, a, b graph.ElemID) graph.ElemID {
	t.Helper()
	id, err := g.AddEdge(a, b, "E", nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestGeneralizeDropsVolatileProps(t *testing.T) {
	g := chain(t, "A", "B")
	h := chain(t, "A", "B")
	ga := g.Nodes()[0].ID
	ha := h.Nodes()[0].ID
	if err := g.SetProp(ga, "stable", "same"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetProp(ha, "stable", "same"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetProp(ga, "ts", "111"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetProp(ha, "ts", "222"); err != nil {
		t.Fatal(err)
	}
	gen, m, err := GeneralizePair(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyMapping(g, h, m) {
		t.Error("generalization mapping invalid")
	}
	n := gen.Node(ga)
	if n.Props["stable"] != "same" {
		t.Error("stable property dropped")
	}
	if _, ok := n.Props["ts"]; ok {
		t.Error("volatile property survived generalization")
	}
}

func TestGeneralizePrefersLowPropCostMatching(t *testing.T) {
	// Two interchangeable B nodes; the matching must pair nodes with
	// agreeing "id" properties, not crossed ones.
	build := func(id1, id2 string) *graph.Graph {
		g := graph.New()
		a := g.AddNode("A", nil)
		b1 := g.AddNode("B", graph.Properties{"id": id1})
		b2 := g.AddNode("B", graph.Properties{"id": id2})
		mustEdge(t, g, a, b1)
		mustEdge(t, g, a, b2)
		return g
	}
	g := build("x", "y")
	h := build("x", "y")
	gen, _, err := GeneralizePair(g, h)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, n := range gen.Nodes() {
		if n.Props["id"] != "" {
			kept++
		}
	}
	if kept != 2 {
		t.Errorf("optimal matching should keep both id props, kept %d", kept)
	}
}

func TestGeneralizeRejectsDissimilar(t *testing.T) {
	g := chain(t, "A", "B")
	h := chain(t, "A", "C")
	if _, _, err := GeneralizePair(g, h); err == nil {
		t.Error("dissimilar graphs generalized")
	}
}

func TestSubgraphEmbedAndSubtract(t *testing.T) {
	bg := chain(t, "A", "B")
	fg := chain(t, "A", "B", "C") // bg plus one node and edge
	m, cost, err := SubgraphEmbed(bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("cost = %d, want 0", cost)
	}
	target := Subtract(fg, m)
	// Remaining: node C, the B->C edge, and a dummy for B.
	var labels []string
	for _, n := range target.Nodes() {
		labels = append(labels, n.Label)
	}
	if target.NumEdges() != 1 || len(labels) != 2 {
		t.Fatalf("target = %s", target)
	}
	hasC, hasDummy := false, false
	for _, l := range labels {
		if l == "C" {
			hasC = true
		}
		if l == "dummy" {
			hasDummy = true
		}
	}
	if !hasC || !hasDummy {
		t.Errorf("target labels = %v, want C and dummy", labels)
	}
	// The dummy must record what it stands for.
	for _, n := range target.Nodes() {
		if n.Label == "dummy" && n.Props["stands_for"] != "B" {
			t.Errorf("dummy stands_for = %q", n.Props["stands_for"])
		}
	}
}

func TestSubgraphEmbedFailsWhenNotContained(t *testing.T) {
	bg := chain(t, "A", "B", "Z")
	fg := chain(t, "A", "B", "C")
	if _, _, err := SubgraphEmbed(bg, fg); err == nil {
		t.Error("embedding of non-subgraph accepted")
	}
	// Larger bg than fg must also fail fast.
	if _, _, err := SubgraphEmbed(fg, chain(t, "A")); err == nil {
		t.Error("oversized background accepted")
	}
}

func TestSubgraphEmbedMinimizesPropertyCost(t *testing.T) {
	// fg has two candidate B nodes; one matches bg's property exactly.
	bg := graph.New()
	ba := bg.AddNode("A", nil)
	bb := bg.AddNode("B", graph.Properties{"k": "v"})
	mustEdge(t, bg, ba, bb)
	fg := graph.New()
	fa := fg.AddNode("A", nil)
	f1 := fg.AddNode("B", graph.Properties{"k": "other"})
	f2 := fg.AddNode("B", graph.Properties{"k": "v"})
	mustEdge(t, fg, fa, f1)
	mustEdge(t, fg, fa, f2)
	m, cost, err := SubgraphEmbed(bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || m[bb] != f2 {
		t.Errorf("cost=%d mapping=%v, want cost 0 via %s", cost, m, f2)
	}
}

func TestSelfLoopHandling(t *testing.T) {
	g := graph.New()
	a := g.AddNode("N", nil)
	if _, err := g.AddEdge(a, a, "loop", nil); err != nil {
		t.Fatal(err)
	}
	h := graph.New()
	b := h.AddNode("N", nil)
	if _, err := h.AddEdge(b, b, "loop", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := Similar(g, h); !ok {
		t.Error("self-loop graphs not similar")
	}
	if _, ok := SimilarDirect(g, h); !ok {
		t.Error("direct engine rejects self-loops")
	}
}

// randomDAGPair builds a random graph and an elementwise-renamed copy.
func randomDAGPair(seed int64) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"P", "Q", "R"}
	g := graph.New()
	n := 3 + rng.Intn(7)
	var ids []graph.ElemID
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode(labels[rng.Intn(len(labels))], nil))
	}
	for i := 0; i < rng.Intn(2*n); i++ {
		src := ids[rng.Intn(n)]
		tgt := ids[rng.Intn(n)]
		if _, err := g.AddEdge(src, tgt, "E", nil); err != nil {
			panic(err)
		}
	}
	// Renamed copy, permuted insertion order.
	h := graph.New()
	perm := rng.Perm(n)
	rename := make(map[graph.ElemID]graph.ElemID, n)
	nodes := g.Nodes()
	for i, pi := range perm {
		id := graph.ElemID("m" + strconv.Itoa(i))
		rename[nodes[pi].ID] = id
		if err := h.InsertNode(id, nodes[pi].Label, nil); err != nil {
			panic(err)
		}
	}
	for i, e := range g.Edges() {
		if err := h.InsertEdge(graph.ElemID("f"+strconv.Itoa(i)), rename[e.Src], rename[e.Tgt], e.Label, nil); err != nil {
			panic(err)
		}
	}
	return g, h
}

// TestEnginesAgreeOnIsomorphicPairs: the ASP-encoded engine and the
// direct VF2-style engine must both accept renamed copies and produce
// valid mappings.
func TestEnginesAgreeOnIsomorphicPairs(t *testing.T) {
	f := func(seed int64) bool {
		g, h := randomDAGPair(seed)
		m1, ok1 := Similar(g, h)
		m2, ok2 := SimilarDirect(g, h)
		if !ok1 || !ok2 {
			return false
		}
		return VerifyMapping(g, h, m1) && VerifyMapping(g, h, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEnginesAgreeOnPerturbedPairs: after flipping one node label, both
// engines must reject.
func TestEnginesAgreeOnPerturbedPairs(t *testing.T) {
	f := func(seed int64) bool {
		g, h := randomDAGPair(seed)
		// Flip one label to a value not in the alphabet.
		h.Nodes()[0].Label = "FLIPPED"
		_, ok1 := Similar(g, h)
		_, ok2 := SimilarDirect(g, h)
		return !ok1 && !ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEmbeddingIntoSupergraph: any graph embeds into itself plus extra
// structure, with cost 0 when properties agree.
func TestEmbeddingIntoSupergraph(t *testing.T) {
	f := func(seed int64) bool {
		g, h := randomDAGPair(seed)
		// Extend h with extra nodes/edges.
		extra := h.AddNode("EXTRA", nil)
		if _, err := h.AddEdge(extra, h.Nodes()[0].ID, "E", nil); err != nil {
			return false
		}
		m, cost, err := SubgraphEmbed(g, h)
		if err != nil {
			return false
		}
		return cost == 0 && VerifyMapping(g, h, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubtractIdentityLeavesNothing(t *testing.T) {
	g := chain(t, "A", "B", "C")
	m, _, err := SubgraphEmbed(g, g)
	if err != nil {
		t.Fatal(err)
	}
	target := Subtract(g, m)
	if target.Size() != 0 {
		t.Errorf("self-subtraction left %d elements", target.Size())
	}
}
