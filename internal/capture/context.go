package capture

import (
	"context"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
)

// RecorderContext is the context-aware recorder surface the pipeline
// drives: identical to Recorder except that Record takes a
// context.Context, so cancellation and deadlines propagate into
// recording trials — the dominant cost of a pipeline run.
//
// Native implementations honor ctx between (or within) the kernel
// events of a trial; legacy Recorders are adapted with WithContext,
// which checks ctx once per trial.
type RecorderContext interface {
	// Name identifies the tool ("spade", "opus", "camflow").
	Name() string
	// DefaultTrials is how many runs per variant the recording stage
	// performs by default.
	DefaultTrials() int
	// FilterGraphs reports whether obviously incomplete trial graphs
	// should be dropped before similarity grouping.
	FilterGraphs() bool
	// Record executes one trial of the given benchmark variant,
	// aborting with ctx.Err() when the context is done.
	Record(ctx context.Context, prog benchprog.Program, v benchprog.Variant, trial int) (Native, error)
	// Transform converts a native recording to the common model.
	Transform(n Native) (*graph.Graph, error)
}

// WithContext adapts a legacy Recorder to the context-aware interface.
// The adapter checks ctx before every trial, so a cancelled matrix run
// stops between trials; it cannot interrupt a trial already inside the
// legacy Record call. (A type cannot implement both interfaces — the
// Record signatures conflict — so adaptation is unconditional.)
func WithContext(rec Recorder) RecorderContext {
	return ContextAdapter{Recorder: rec}
}

// ContextAdapter wraps a legacy Recorder as a RecorderContext. The
// embedded Recorder's context-free Record method is shadowed by the
// context-aware one; everything else is promoted unchanged.
type ContextAdapter struct {
	Recorder
}

var _ RecorderContext = ContextAdapter{}

// Record implements RecorderContext: a per-trial cancellation check
// around the legacy Record.
func (a ContextAdapter) Record(ctx context.Context, prog benchprog.Program, v benchprog.Variant, trial int) (Native, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Recorder.Record(prog, v, trial)
}

// Unwrap exposes the wrapped legacy recorder, so optional-interface
// probes (AsComplete) can see through the adapter.
func (a ContextAdapter) Unwrap() Recorder { return a.Recorder }

// AsComplete reports whether a recorder (possibly wrapped in one or
// more adapters exposing Unwrap) implements the Complete optional
// interface, and returns that view.
func AsComplete(rec any) (Complete, bool) {
	for rec != nil {
		if c, ok := rec.(Complete); ok {
			return c, true
		}
		u, ok := rec.(interface{ Unwrap() Recorder })
		if !ok {
			return nil, false
		}
		rec = u.Unwrap()
	}
	return nil, false
}
