package spade

import (
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/provmark"
)

func camflowReporterConfig() Config {
	cfg := DefaultConfig()
	cfg.Reporter = ReporterCamFlow
	return cfg
}

func runPipeline(t *testing.T, cfg Config, benchName string) *provmark.Result {
	t.Helper()
	prog, ok := benchprog.ByName(benchName)
	if !ok {
		t.Fatalf("unknown benchmark %s", benchName)
	}
	res, err := provmark.NewRunner(New(cfg), provmark.Config{}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCamFlowReporterExtendsCoverage: syscalls invisible to the audit
// reporter (chown, setresgid, tee) become visible through LSM hooks,
// while keeping SPADE's vocabulary.
func TestCamFlowReporterExtendsCoverage(t *testing.T) {
	for _, benchName := range []string{"chown", "setresgid", "tee", "fchown"} {
		audit := runPipeline(t, DefaultConfig(), benchName)
		lsm := runPipeline(t, camflowReporterConfig(), benchName)
		if !audit.Empty {
			t.Errorf("%s: audit reporter unexpectedly recorded it", benchName)
		}
		if lsm.Empty {
			t.Errorf("%s: camflow reporter missed it (%s)", benchName, lsm.Reason)
			continue
		}
		// SPADE vocabulary preserved.
		for _, n := range lsm.Target.Nodes() {
			if n.Label != "Process" && n.Label != "Artifact" && n.Label != "dummy" {
				t.Errorf("%s: non-SPADE node label %q", benchName, n.Label)
			}
		}
	}
}

// TestCamFlowReporterFixesVforkDV: the LSM task_create hook fires at
// creation time, so the vfork child connects to its parent — the audit
// reporter's DV quirk disappears.
func TestCamFlowReporterFixesVforkDV(t *testing.T) {
	res := runPipeline(t, camflowReporterConfig(), "vfork")
	if res.Empty {
		t.Fatalf("vfork empty: %s", res.Reason)
	}
	connected := false
	for _, e := range res.Target.Edges() {
		if e.Label == "WasTriggeredBy" && e.Props["operation"] == "task_create" {
			connected = true
		}
	}
	if !connected {
		t.Error("vfork child not connected under the camflow reporter")
	}
}

// TestCamFlowReporterInheritsLSMGaps: hooks CamFlow does not relay
// (dup, pipe creation) stay invisible regardless of the consumer.
func TestCamFlowReporterInheritsLSMGaps(t *testing.T) {
	for _, benchName := range []string{"dup", "pipe"} {
		res := runPipeline(t, camflowReporterConfig(), benchName)
		if !res.Empty {
			t.Errorf("%s: recorded despite missing LSM hook", benchName)
		}
	}
}

// TestCamFlowReporterStillBlindToDenied: CamFlow 0.4.5 does not relay
// denied checks, so the failed-call blindness carries over.
func TestCamFlowReporterStillBlindToDenied(t *testing.T) {
	prog := benchprog.FailedRename()
	res, err := provmark.NewRunner(New(camflowReporterConfig()), provmark.Config{}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty {
		t.Error("denied rename recorded through the camflow reporter")
	}
}
