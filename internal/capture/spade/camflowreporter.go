package spade

import (
	"math/rand"
	"strconv"

	"provmark/internal/graph"
	"provmark/internal/oskernel"
)

// Reporter selects SPADE's event source. The paper notes that CamFlow
// can be used instead of Linux Audit as a reporter to SPADE ("though we
// have not yet experimented with this configuration") — this file
// implements that configuration: SPADE vocabulary and storage, CamFlow
// (LSM) visibility.
type Reporter int

// SPADE reporters.
const (
	// ReporterAudit is the Linux Audit reporter (the paper's baseline).
	ReporterAudit Reporter = iota + 1
	// ReporterCamFlow feeds SPADE from the LSM tap: kernel-level
	// visibility (chown, setres*, tee become visible; failed-call
	// blindness and the vfork DV quirk disappear) with SPADE's graph
	// vocabulary.
	ReporterCamFlow
)

// lsmBuilder translates LSM hook records into SPADE's Process/Artifact
// vocabulary.
type lsmBuilder struct {
	r          *Recorder
	g          *graph.Graph
	rng        *rand.Rand
	procVertex map[int]graph.ElemID
	artifact   map[uint64]graph.ElemID // keyed by inode: kernel-level identity
}

// buildFromLSM constructs the SPADE graph from the LSM event stream.
func (r *Recorder) buildFromLSM(events []oskernel.LSMEvent, rng *rand.Rand) *graph.Graph {
	b := &lsmBuilder{
		r:          r,
		g:          graph.New(),
		rng:        rng,
		procVertex: make(map[int]graph.ElemID),
		artifact:   make(map[uint64]graph.ElemID),
	}
	for _, ev := range events {
		b.handle(ev)
	}
	return b.g
}

func (b *lsmBuilder) timestamp() string {
	return strconv.FormatInt(1569326400+int64(b.rng.Intn(100000)), 10) + "." + strconv.Itoa(b.rng.Intn(1000))
}

func (b *lsmBuilder) proc(ev oskernel.LSMEvent) graph.ElemID {
	if id, ok := b.procVertex[ev.PID]; ok {
		return id
	}
	id := b.g.AddNode("Process", graph.Properties{
		"pid":        strconv.Itoa(ev.PID),
		"name":       ev.Comm,
		"uid":        strconv.Itoa(ev.Cred.EUID),
		"gid":        strconv.Itoa(ev.Cred.EGID),
		"source":     "camflow",
		"start time": b.timestamp(),
	})
	b.procVertex[ev.PID] = id
	return id
}

func (b *lsmBuilder) art(ev oskernel.LSMEvent) graph.ElemID {
	if id, ok := b.artifact[ev.Inode]; ok {
		return id
	}
	id := b.g.AddNode("Artifact", graph.Properties{
		"inode":   strconv.FormatUint(ev.Inode, 10),
		"path":    ev.Path,
		"subtype": ev.ObjType,
		"source":  "camflow",
		"epoch":   strconv.Itoa(b.rng.Intn(1000)),
	})
	b.artifact[ev.Inode] = id
	return id
}

func (b *lsmBuilder) edge(src, tgt graph.ElemID, label, operation string) {
	props := graph.Properties{
		"operation": operation,
		"event_id":  strconv.Itoa(100000 + b.rng.Intn(900000)),
		"time":      b.timestamp(),
	}
	if _, err := b.g.AddEdge(src, tgt, label, props); err != nil {
		panic("spade: camflow reporter: " + err.Error()) // vertices created by callers
	}
}

func (b *lsmBuilder) handle(ev oskernel.LSMEvent) {
	if !ev.Allowed {
		return // CamFlow 0.4.5 does not relay denied checks
	}
	switch ev.Hook {
	case oskernel.HookFileOpen:
		b.edge(b.proc(ev), b.art(ev), "Used", "open")
	case oskernel.HookFilePermission:
		if ev.Access == "write" {
			b.edge(b.art(ev), b.proc(ev), "WasGeneratedBy", "write")
		} else {
			b.edge(b.proc(ev), b.art(ev), "Used", "read")
		}
	case oskernel.HookInodeCreate:
		b.edge(b.art(ev), b.proc(ev), "WasGeneratedBy", "create")
	case oskernel.HookInodeLink:
		b.edge(b.art(ev), b.proc(ev), "WasGeneratedBy", "link")
	case oskernel.HookInodeRename:
		b.edge(b.art(ev), b.proc(ev), "WasGeneratedBy", "rename")
	case oskernel.HookInodeUnlink:
		b.edge(b.proc(ev), b.art(ev), "Used", "unlink")
	case oskernel.HookInodeSetattr:
		b.edge(b.art(ev), b.proc(ev), "WasGeneratedBy", "setattr:"+ev.Detail)
	case oskernel.HookTaskFixSetuid, oskernel.HookTaskFixSetgid:
		old := b.proc(ev)
		fresh := b.g.AddNode("Process", graph.Properties{
			"pid":        strconv.Itoa(ev.PID),
			"name":       ev.Comm,
			"uid":        strconv.Itoa(ev.Cred.EUID),
			"gid":        strconv.Itoa(ev.Cred.EGID),
			"source":     "camflow",
			"start time": b.timestamp(),
		})
		b.procVertex[ev.PID] = fresh
		b.edge(fresh, old, "WasTriggeredBy", "setid:"+ev.Detail)
	case oskernel.HookBprmCheck:
		p := b.proc(ev)
		b.edge(p, b.art(ev), "Used", "execve")
	case oskernel.HookTaskCreate:
		parent := b.proc(ev)
		childPID := childPIDFromLSMDetail(ev.Detail)
		if childPID <= 0 {
			return
		}
		childEv := ev
		childEv.PID = childPID
		// The LSM hook fires at creation time, so (unlike the audit
		// reporter) the child vertex always connects to its parent —
		// no vfork DV quirk.
		child := b.proc(childEv)
		b.edge(child, parent, "WasTriggeredBy", "task_create")
	case oskernel.HookPipeSplice:
		p := b.proc(ev)
		in := b.art(ev)
		outEv := ev
		outEv.Inode = ev.AuxInode
		outEv.Path = ev.AuxPath
		outEv.ObjType = "pipe"
		out := b.art(outEv)
		b.edge(p, in, "Used", "tee")
		b.edge(out, p, "WasGeneratedBy", "tee")
	case oskernel.HookTaskExit:
		b.proc(ev)
	}
}

// childPIDFromLSMDetail parses "fork pid=N"-style detail strings.
func childPIDFromLSMDetail(detail string) int {
	for i := 0; i+4 <= len(detail); i++ {
		if detail[i:i+4] == "pid=" {
			n, err := strconv.Atoi(detail[i+4:])
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}
