package spade

import (
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
)

func record(t *testing.T, cfg Config, benchName string, v benchprog.Variant, trial int) *graph.Graph {
	t.Helper()
	rec := New(cfg)
	prog, ok := benchprog.ByName(benchName)
	if !ok {
		t.Fatalf("unknown benchmark %s", benchName)
	}
	n, err := rec.Record(prog, v, trial)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rec.Transform(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func recordProg(t *testing.T, cfg Config, prog benchprog.Program, v benchprog.Variant) *graph.Graph {
	t.Helper()
	rec := New(cfg)
	n, err := rec.Record(prog, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rec.Transform(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNativeFormatIsDOT(t *testing.T) {
	rec := New(DefaultConfig())
	prog, _ := benchprog.ByName("open")
	n, err := rec.Record(prog, benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Format() != "dot" {
		t.Errorf("format = %s", n.Format())
	}
	out, ok := n.(Output)
	if !ok || !strings.HasPrefix(out.DOT, "digraph") {
		t.Error("native output is not a DOT digraph")
	}
}

// TestFailedCallsInvisible: SPADE's default audit rules only report
// successful calls (the Alice use case).
func TestFailedCallsInvisible(t *testing.T) {
	fg := recordProg(t, DefaultConfig(), benchprog.FailedRename(), benchprog.Foreground)
	for _, e := range fg.Edges() {
		if e.Props["operation"] == "rename" {
			t.Error("failed rename produced graph structure")
		}
	}
}

// TestDupStateChangeOnly: dup is tracked as fd state, not graphed.
func TestDupStateChangeOnly(t *testing.T) {
	bg := record(t, DefaultConfig(), "dup", benchprog.Background, 0)
	fg := record(t, DefaultConfig(), "dup", benchprog.Foreground, 0)
	if bg.Size() != fg.Size() {
		t.Errorf("dup changed graph size: bg=%d fg=%d", bg.Size(), fg.Size())
	}
}

// TestVforkChildDisconnected: the DV observation.
func TestVforkChildDisconnected(t *testing.T) {
	fg := record(t, DefaultConfig(), "vfork", benchprog.Foreground, 0)
	// Find the child process vertex (ppid = bench pid) and check no
	// WasTriggeredBy edge leaves it.
	var childID graph.ElemID
	for _, n := range fg.Nodes() {
		if n.Label == "Process" && n.Props["ppid"] == "2" && n.Props["pid"] == "3" {
			childID = n.ID
		}
	}
	if childID == "" {
		t.Fatal("vfork child vertex missing")
	}
	if len(fg.OutEdges(childID))+len(fg.InEdges(childID)) != 0 {
		t.Error("vfork child vertex is connected; expected DV")
	}
}

// TestSimplifyOffRecordsSetres: disabling simplify monitors setresgid
// explicitly even when nothing changes.
func TestSimplifyOffRecordsSetres(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Simplify = false
	cfg.BugRandomEdgeProperty = false
	bg := record(t, cfg, "setresgid", benchprog.Background, 0)
	fg := record(t, cfg, "setresgid", benchprog.Foreground, 0)
	if fg.Size() <= bg.Size() {
		t.Error("simplify=off did not record the no-op setresgid")
	}
	// With simplify on it stays invisible.
	on := DefaultConfig()
	bgOn := record(t, on, "setresgid", benchprog.Background, 0)
	fgOn := record(t, on, "setresgid", benchprog.Foreground, 0)
	if fgOn.Size() != bgOn.Size() {
		t.Error("simplify=on recorded a credential no-op")
	}
}

// TestSimplifyBugAddsDisconnectedEdge: the Bob bug.
func TestSimplifyBugAddsDisconnectedEdge(t *testing.T) {
	buggy := DefaultConfig()
	buggy.Simplify = false
	buggy.BugRandomEdgeProperty = true
	fixed := buggy
	fixed.BugRandomEdgeProperty = false
	gBuggy := record(t, buggy, "setresuid", benchprog.Foreground, 0)
	gFixed := record(t, fixed, "setresuid", benchprog.Foreground, 0)
	if gBuggy.Size() != gFixed.Size()+3 { // 2 spurious nodes + 1 edge
		t.Errorf("bug structure delta = %d, want 3", gBuggy.Size()-gFixed.Size())
	}
	// The spurious property must be volatile across trials.
	g2 := record(t, buggy, "setresuid", benchprog.Foreground, 1)
	flags := collectProps(gBuggy, "flags")
	flags2 := collectProps(g2, "flags")
	if len(flags) != 1 || len(flags2) != 1 {
		t.Fatalf("expected one buggy flags prop per run, got %d/%d", len(flags), len(flags2))
	}
	if flags[0] == flags2[0] {
		t.Error("buggy flags value not random across trials")
	}
}

func collectProps(g *graph.Graph, key string) []string {
	var out []string
	for _, e := range g.Edges() {
		if v, ok := e.Props[key]; ok {
			out = append(out, v)
		}
	}
	return out
}

// TestIORunsFilter: buggy filter is a no-op; fixed filter coalesces.
func TestIORunsFilter(t *testing.T) {
	prog := benchprog.RepeatedReads(6)
	countReads := func(g *graph.Graph) (edges int, counted string) {
		for _, e := range g.Edges() {
			if e.Props["operation"] == "read" {
				edges++
				if c, ok := e.Props["count"]; ok {
					counted = c
				}
			}
		}
		return edges, counted
	}

	off := DefaultConfig()
	gOff := recordProg(t, off, prog, benchprog.Foreground)
	nOff, _ := countReads(gOff)
	if nOff != 6 {
		t.Fatalf("without filter: %d read edges, want 6", nOff)
	}

	buggy := DefaultConfig()
	buggy.IORuns = true
	gBuggy := recordProg(t, buggy, prog, benchprog.Foreground)
	nBuggy, _ := countReads(gBuggy)
	if nBuggy != 6 {
		t.Errorf("buggy filter coalesced (%d edges); the bug should make it a no-op", nBuggy)
	}

	fixed := buggy
	fixed.BugIORunsPropertyName = false
	gFixed := recordProg(t, fixed, prog, benchprog.Foreground)
	nFixed, count := countReads(gFixed)
	if nFixed != 1 || count != "6" {
		t.Errorf("fixed filter: %d edges count=%q, want 1 edge with count=6", nFixed, count)
	}
}

// TestVersioningCreatesArtifactVersions: with versioning, each write
// yields a fresh artifact vertex.
func TestVersioningCreatesArtifactVersions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Versioning = true
	g := record(t, cfg, "write", benchprog.Foreground, 0)
	versions := map[string]bool{}
	for _, n := range g.Nodes() {
		if n.Label == "Artifact" && n.Props["path"] == "/stage/test.txt" {
			versions[n.Props["version"]] = true
		}
	}
	if len(versions) < 2 {
		t.Errorf("versioning produced %d versions of the written file, want >=2", len(versions))
	}
}

// TestVolatilePropsDifferAcrossTrials while structure is stable.
func TestVolatilePropsDifferAcrossTrials(t *testing.T) {
	g1 := record(t, DefaultConfig(), "open", benchprog.Foreground, 0)
	g2 := record(t, DefaultConfig(), "open", benchprog.Foreground, 1)
	if graph.ShapeFingerprint(g1) != graph.ShapeFingerprint(g2) {
		t.Fatal("structure differs across trials")
	}
	if graph.Equal(g1, g2) {
		t.Error("trials identical including volatile properties")
	}
}

func TestRecorderMetadata(t *testing.T) {
	rec := New(DefaultConfig())
	if rec.Name() != "spade" || rec.DefaultTrials() != 2 || rec.FilterGraphs() {
		t.Error("metadata wrong")
	}
}
