package spade

import (
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/match"
	"provmark/internal/neo4jsim"
)

func fastNeo4jConfig() Config {
	return DefaultConfig().WithNeo4jStorage(neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1})
}

func TestNeo4jStorageFormat(t *testing.T) {
	rec := New(fastNeo4jConfig())
	prog, _ := benchprog.ByName("open")
	n, err := rec.Record(prog, benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Format() != "neo4j" {
		t.Errorf("format = %s", n.Format())
	}
	out, ok := n.(Output)
	if !ok || out.DB == nil || out.DOT != "" {
		t.Error("neo4j backend should produce a database and no DOT text")
	}
}

// TestBackendsAgreeOnStructure: the same trial through spg and spn must
// yield similar graphs — storage choice cannot change semantics.
func TestBackendsAgreeOnStructure(t *testing.T) {
	for _, benchName := range []string{"open", "rename", "execve", "fork"} {
		prog, _ := benchprog.ByName(benchName)
		dotRec := New(DefaultConfig())
		dbRec := New(fastNeo4jConfig())
		nDot, err := dotRec.Record(prog, benchprog.Foreground, 0)
		if err != nil {
			t.Fatal(err)
		}
		gDot, err := dotRec.Transform(nDot)
		if err != nil {
			t.Fatal(err)
		}
		nDB, err := dbRec.Record(prog, benchprog.Foreground, 0)
		if err != nil {
			t.Fatal(err)
		}
		gDB, err := dbRec.Transform(nDB)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := match.Similar(gDot, gDB); !ok {
			t.Errorf("%s: spg and spn graphs differ structurally (%d vs %d elements)",
				benchName, gDot.Size(), gDB.Size())
		}
	}
}

func TestTransformRejectsForeignNative(t *testing.T) {
	rec := New(DefaultConfig())
	if _, err := rec.Transform(fakeNative{}); err == nil {
		t.Error("foreign native type accepted")
	}
}

type fakeNative struct{}

func (fakeNative) Format() string { return "fake" }
