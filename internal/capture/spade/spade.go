// Package spade simulates SPADEv2 with the Linux Audit reporter (tag
// tc-e3 in the paper). SPADE runs in user space and synthesizes a
// provenance graph from audit-daemon records, so:
//
//   - only *successful* syscalls are reported under the default audit
//     rules (failed calls leave no trace — the Alice use case);
//   - only the baseline-monitored syscall set produces graph structure;
//     dup and credential no-ops are "state changes" SPADE tracks without
//     emitting structure (SC in Table 2); mknod, chown, pipe and tee are
//     not monitored at all (NR);
//   - audit reports at syscall exit, so a vfork child's records precede
//     the parent's vfork record and the child vertex ends up
//     disconnected (DV);
//   - the simplify flag and IORuns filter of the Bob use case are
//     modelled, including both bugs the paper reports (a background edge
//     property initialized from a stale buffer when simplify is off, and
//     the IORuns property-name mismatch that made the filter a no-op).
//
// Native output is Graphviz DOT, SPADE's Graphviz storage backend.
package spade

import (
	"fmt"
	"math/rand"
	"strconv"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/dot"
	"provmark/internal/graph"
	"provmark/internal/neo4jsim"
	"provmark/internal/oskernel"
)

// Config selects SPADE's relevant configuration surface.
type Config struct {
	// Simplify is SPADE's default-on flag: credential-change syscalls
	// (setresuid/setresgid) are not explicitly monitored, but observed
	// attribute *changes* are still recorded.
	Simplify bool
	// IORuns enables the run-coalescing filter for repeated reads and
	// writes.
	IORuns bool
	// Versioning creates a fresh artifact vertex per write.
	Versioning bool
	// BugRandomEdgeProperty reproduces the simplify-off bug: the
	// explicit setres* handler reuses a stale record buffer, attaching a
	// spurious disconnected edge whose property holds a random value.
	// Fixed upstream after the paper reported it; on by default to match
	// the benchmarked version.
	BugRandomEdgeProperty bool
	// BugIORunsPropertyName reproduces the filter bug: IORuns matches on
	// a property key SPADE does not emit, so coalescing never happens.
	BugIORunsPropertyName bool
	// Storage selects the output backend; zero means StorageDOT (spg).
	Storage Storage
	// DB tunes the Neo4j simulation when Storage is StorageNeo4j.
	DB neo4jsim.Options
	// Reporter selects the event source; zero means ReporterAudit.
	Reporter Reporter
}

// DefaultConfig is the paper's baseline configuration.
func DefaultConfig() Config {
	return Config{
		Simplify:              true,
		BugRandomEdgeProperty: true,
		BugIORunsPropertyName: true,
	}
}

// Recorder is the SPADE simulator.
type Recorder struct {
	cfg Config
}

var _ capture.Recorder = (*Recorder)(nil)

// New builds a SPADE recorder with the given configuration.
func New(cfg Config) *Recorder { return &Recorder{cfg: cfg} }

// Name implements capture.Recorder.
func (r *Recorder) Name() string { return "spade" }

// DefaultTrials implements capture.Recorder. SPADE output is stable
// once flushed, so two trials suffice.
func (r *Recorder) DefaultTrials() int { return 2 }

// FilterGraphs implements capture.Recorder (false for SPADE).
func (r *Recorder) FilterGraphs() bool { return false }

// Output is SPADE's native artifact: DOT text under the Graphviz
// backend, a database under the Neo4j backend.
type Output struct {
	DOT string
	DB  *neo4jsim.DB
}

// Format implements capture.Native.
func (o Output) Format() string {
	if o.DB != nil {
		return "neo4j"
	}
	return "dot"
}

// Record implements capture.Recorder: run the benchmark in a fresh
// kernel with an audit tap, then synthesize the DOT output.
func (r *Recorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := benchprog.Run(k, prog, v); err != nil {
		return nil, fmt.Errorf("spade: record %s/%s: %w", prog.Name, v, err)
	}
	k.Unregister(tap)
	rng := rand.New(rand.NewSource(int64(trial)*7919 + int64(len(prog.Name))*104729 + int64(v)))
	var g *graph.Graph
	if r.cfg.Reporter == ReporterCamFlow {
		g = r.buildFromLSM(tap.LSMEvents, rng)
	} else {
		g = r.build(tap.AuditEvents, rng)
	}
	if r.cfg.IORuns {
		g = r.applyIORuns(g)
	}
	if r.cfg.Storage == StorageNeo4j {
		db, err := storeToNeo4j(g, r.cfg.DB)
		if err != nil {
			return nil, err
		}
		return Output{DB: db}, nil
	}
	return Output{DOT: dot.WriteString(g, "spade_"+prog.Name)}, nil
}

// Transform implements capture.Recorder: parse the DOT text or extract
// the Neo4j store, depending on the configured backend.
func (r *Recorder) Transform(n capture.Native) (*graph.Graph, error) {
	return transformNative(n)
}

// parseDOT is the Graphviz-side transformation.
func parseDOT(text string) (*graph.Graph, error) {
	return dot.ParseString(text)
}

// monitored is the baseline audit rule set (auditctl rules SPADE
// installs by default). Conspicuously absent: dup*, mknod*, chown
// family, pipe*, tee, setres* (with simplify on).
var monitored = map[string]bool{
	"creat": true, "open": true, "openat": true, "close": true,
	"link": true, "linkat": true, "symlink": true, "symlinkat": true,
	"read": true, "pread": true, "write": true, "pwrite": true,
	"rename": true, "renameat": true, "truncate": true, "ftruncate": true,
	"unlink": true, "unlinkat": true,
	// kill is absent: SPADE's default audit rules do not monitor it,
	// which (with the abnormal-termination asymmetry) makes the kill
	// benchmark empty (LP in Table 2).
	"clone": true, "execve": true, "fork": true, "vfork": true,
	"exit_group": true, "mmap": true,
	"chmod": true, "fchmod": true, "fchmodat": true,
	"setuid": true, "setreuid": true, "setgid": true, "setregid": true,
}

// builder accumulates the SPADE graph from an audit stream.
type builder struct {
	r   *Recorder
	g   *graph.Graph
	rng *rand.Rand
	// procVertex maps pid -> current process vertex (SPADE creates a
	// fresh vertex per execve or credential change: a "process state").
	procVertex map[int]graph.ElemID
	artifact   map[string]graph.ElemID // path -> artifact vertex
	version    map[string]int          // path -> artifact version (Versioning)
}

func (r *Recorder) build(events []oskernel.AuditEvent, rng *rand.Rand) *graph.Graph {
	b := &builder{
		r:          r,
		g:          graph.New(),
		rng:        rng,
		procVertex: make(map[int]graph.ElemID),
		artifact:   make(map[string]graph.ElemID),
		version:    make(map[string]int),
	}
	for _, ev := range events {
		b.handle(ev)
	}
	return b.g
}

func (b *builder) auditID() string {
	return strconv.Itoa(100000 + b.rng.Intn(900000))
}

func (b *builder) timestamp() string {
	return strconv.FormatInt(1569326400+int64(b.rng.Intn(100000)), 10) + "." + strconv.Itoa(b.rng.Intn(1000))
}

// proc returns (creating if needed) the current vertex for a pid.
func (b *builder) proc(ev oskernel.AuditEvent) graph.ElemID {
	if id, ok := b.procVertex[ev.PID]; ok {
		return id
	}
	id := b.g.AddNode("Process", graph.Properties{
		"pid":        strconv.Itoa(ev.PID),
		"ppid":       strconv.Itoa(ev.PPID),
		"name":       ev.Comm,
		"exe":        ev.Exe,
		"uid":        strconv.Itoa(ev.UID),
		"gid":        strconv.Itoa(ev.GID),
		"start time": b.timestamp(),
	})
	b.procVertex[ev.PID] = id
	return id
}

// artifactFor returns (creating if needed) the artifact vertex for a
// path, respecting the versioning option.
func (b *builder) artifactFor(path string, inode uint64, bumpVersion bool) graph.ElemID {
	key := path
	if b.r.cfg.Versioning {
		if bumpVersion {
			b.version[path]++
		}
		key = path + "#" + strconv.Itoa(b.version[path])
	}
	if id, ok := b.artifact[key]; ok {
		return id
	}
	props := graph.Properties{
		"path":    path,
		"inode":   strconv.FormatUint(inode, 10),
		"subtype": "file",
		"epoch":   strconv.Itoa(b.rng.Intn(1000)),
	}
	if b.r.cfg.Versioning {
		props["version"] = strconv.Itoa(b.version[path])
	}
	id := b.g.AddNode("Artifact", props)
	b.artifact[key] = id
	return id
}

func (b *builder) edge(src, tgt graph.ElemID, label, operation string, extra graph.Properties) {
	props := graph.Properties{
		"operation": operation,
		"audit_id":  b.auditID(),
		"time":      b.timestamp(),
	}
	for k, v := range extra {
		props[k] = v
	}
	if _, err := b.g.AddEdge(src, tgt, label, props); err != nil {
		panic("spade: edge: " + err.Error()) // vertices created by callers
	}
}

func (b *builder) handle(ev oskernel.AuditEvent) {
	if !ev.Success {
		return // default audit rules: exit>=0 only
	}
	name := ev.Syscall
	switch {
	case monitored[name]:
		// fall through to the handlers below
	case (name == "setresuid" || name == "setresgid") && !b.r.cfg.Simplify:
		// simplify off: explicitly monitored
	case name == "setresuid" || name == "setresgid":
		// simplify on: only observed attribute changes are recorded
		if !hasChange(ev.Args) {
			return
		}
	default:
		return // not monitored (dup*, mknod*, chown*, pipe*, tee, ...)
	}

	switch name {
	case "open", "openat", "creat":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), name == "creat")
		b.edge(p, a, "Used", name, nil)
	case "close":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), false)
		b.edge(p, a, "Used", "close", nil)
	case "read", "pread":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), false)
		b.edge(p, a, "Used", name, graph.Properties{"size": args(ev, 1)})
	case "write", "pwrite":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), true)
		b.edge(a, p, "WasGeneratedBy", name, graph.Properties{"size": args(ev, 1)})
	case "mmap":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), false)
		b.edge(p, a, "Used", "mmap", nil)
	case "link", "linkat", "symlink", "symlinkat":
		p := b.proc(ev)
		oldA := b.artifactFor(args(ev, 0), inodeOf(ev), false)
		newA := b.artifactFor(args(ev, 1), inodeOf(ev), false)
		b.edge(newA, oldA, "WasDerivedFrom", name, nil)
		b.edge(newA, p, "WasGeneratedBy", name, nil)
	case "rename", "renameat":
		// Figure 1(a): two artifact vertices (old and new name) linked
		// to each other and to the renaming process.
		p := b.proc(ev)
		oldA := b.artifactFor(args(ev, 0), inodeOf(ev), false)
		newA := b.artifactFor(args(ev, 1), inodeOf(ev), true)
		b.edge(newA, oldA, "WasDerivedFrom", name, nil)
		b.edge(p, oldA, "Used", name, nil)
		b.edge(newA, p, "WasGeneratedBy", name, nil)
	case "truncate", "ftruncate":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), true)
		b.edge(a, p, "WasGeneratedBy", name, graph.Properties{"size": args(ev, 1)})
	case "unlink", "unlinkat":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), false)
		b.edge(p, a, "Used", name, nil)
	case "fork", "vfork", "clone":
		parent := b.proc(ev)
		childPID := int(ev.Exit)
		if _, exists := b.procVertex[childPID]; exists {
			// The child was already seen executing its own syscalls:
			// audit reported the vfork late (parent suspended), so SPADE
			// cannot connect parent and child (DV in Table 2).
			return
		}
		child := b.g.AddNode("Process", graph.Properties{
			"pid":        strconv.Itoa(childPID),
			"ppid":       strconv.Itoa(ev.PID),
			"name":       ev.Comm,
			"exe":        ev.Exe,
			"uid":        strconv.Itoa(ev.UID),
			"gid":        strconv.Itoa(ev.GID),
			"start time": b.timestamp(),
		})
		b.procVertex[childPID] = child
		b.edge(child, parent, "WasTriggeredBy", name, nil)
	case "execve":
		old := b.proc(ev)
		fresh := b.g.AddNode("Process", graph.Properties{
			"pid":         strconv.Itoa(ev.PID),
			"ppid":        strconv.Itoa(ev.PPID),
			"name":        ev.Comm,
			"exe":         args(ev, 0),
			"commandline": joinArgs(ev),
			"uid":         strconv.Itoa(ev.UID),
			"gid":         strconv.Itoa(ev.GID),
			"start time":  b.timestamp(),
		})
		b.procVertex[ev.PID] = fresh
		b.edge(fresh, old, "WasTriggeredBy", "execve", nil)
		if path := pathOf(ev); path != "" {
			exe := b.artifactFor(path, inodeOf(ev), false)
			b.edge(fresh, exe, "Used", "load", nil)
		}
	case "exit_group":
		b.proc(ev) // ensure the exiting process has a vertex
	case "chmod", "fchmod", "fchmodat":
		p := b.proc(ev)
		a := b.artifactFor(pathOf(ev), inodeOf(ev), true)
		b.edge(a, p, "WasGeneratedBy", name, graph.Properties{"mode": args(ev, 1)})
	case "setuid", "setreuid", "setgid", "setregid", "setresuid", "setresgid":
		old := b.proc(ev)
		fresh := b.g.AddNode("Process", graph.Properties{
			"pid":        strconv.Itoa(ev.PID),
			"ppid":       strconv.Itoa(ev.PPID),
			"name":       ev.Comm,
			"exe":        ev.Exe,
			"uid":        strconv.Itoa(ev.EUID),
			"gid":        strconv.Itoa(ev.EGID),
			"start time": b.timestamp(),
		})
		b.procVertex[ev.PID] = fresh
		b.edge(fresh, old, "WasTriggeredBy", name, nil)
		if (name == "setresuid" || name == "setresgid") && !b.r.cfg.Simplify && b.r.cfg.BugRandomEdgeProperty {
			// Bug (Bob's use case): the explicit setres* handler reuses a
			// stale record buffer, emitting a spurious disconnected edge
			// whose property carries a random (uninitialized) value.
			n1 := b.g.AddNode("Artifact", graph.Properties{"subtype": "unknown"})
			n2 := b.g.AddNode("Artifact", graph.Properties{"subtype": "unknown"})
			b.edge(n1, n2, "WasDerivedFrom", "update", graph.Properties{
				"flags": strconv.Itoa(b.rng.Int()),
			})
		}
	}
}

// applyIORuns coalesces runs of identical read/write edges between the
// same endpoints into a single edge with a count property. With the
// property-name bug the filter queries key "iooperation", which SPADE
// never emits, so nothing matches and the graph is unchanged — exactly
// the surprising no-op Bob observed.
func (r *Recorder) applyIORuns(g *graph.Graph) *graph.Graph {
	opKey := "operation"
	if r.cfg.BugIORunsPropertyName {
		opKey = "iooperation"
	}
	type runKey struct {
		src, tgt graph.ElemID
		label    string
		op       string
	}
	first := make(map[runKey]graph.ElemID)
	count := make(map[runKey]int)
	for _, e := range g.Edges() {
		op := e.Props[opKey]
		if op != "read" && op != "write" && op != "pread" && op != "pwrite" {
			continue
		}
		k := runKey{e.Src, e.Tgt, e.Label, op}
		count[k]++
		if count[k] == 1 {
			first[k] = e.ID
		} else {
			g.RemoveEdge(e.ID)
		}
	}
	for k, n := range count {
		if n > 1 {
			if err := g.SetProp(first[k], "count", strconv.Itoa(n)); err != nil {
				panic("spade: ioruns: " + err.Error())
			}
		}
	}
	return g
}

func pathOf(ev oskernel.AuditEvent) string {
	if len(ev.Paths) > 0 {
		return ev.Paths[0].Name
	}
	if len(ev.Args) > 0 {
		return ev.Args[0]
	}
	return ""
}

func inodeOf(ev oskernel.AuditEvent) uint64 {
	if len(ev.Paths) > 0 {
		return ev.Paths[0].Inode
	}
	return 0
}

func args(ev oskernel.AuditEvent, i int) string {
	if i < len(ev.Args) {
		return ev.Args[i]
	}
	return ""
}

func joinArgs(ev oskernel.AuditEvent) string {
	out := ""
	for i, a := range ev.Args {
		if i > 0 {
			out += " "
		}
		out += a
	}
	return out
}

func hasChange(argList []string) bool {
	for _, a := range argList {
		if a == "changed=1" {
			return true
		}
	}
	return false
}

func atoiSafe(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}
