package spade

import (
	"fmt"

	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/neo4jsim"
)

// Storage selects SPADE's output backend. The paper's CLI exposes both:
// spg (SPADE with Graphviz storage) and spn (SPADE with Neo4j storage).
type Storage int

// SPADE storage backends.
const (
	// StorageDOT is the Graphviz backend (spg), the default.
	StorageDOT Storage = iota + 1
	// StorageNeo4j is the Neo4j backend (spn); transformation then pays
	// the same database-extraction costs as OPUS.
	StorageNeo4j
)

// WithNeo4jStorage returns a copy of the configuration using the Neo4j
// backend with the given storage-cost options.
func (c Config) WithNeo4jStorage(opts neo4jsim.Options) Config {
	c.Storage = StorageNeo4j
	c.DB = opts
	return c
}

// storeToNeo4j writes a built SPADE graph into a fresh Neo4j-sim
// database, as SPADE's Neo4j storage plugin would.
func storeToNeo4j(g *graph.Graph, opts neo4jsim.Options) (*neo4jsim.DB, error) {
	db := neo4jsim.New(opts)
	ids := make(map[graph.ElemID]neo4jsim.NodeID, g.NumNodes())
	for _, n := range g.Nodes() {
		props := make(map[string]string, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		ids[n.ID] = db.CreateNode(n.Label, props)
	}
	for _, e := range g.Edges() {
		props := make(map[string]string, len(e.Props))
		for k, v := range e.Props {
			props[k] = v
		}
		if _, err := db.CreateRel(ids[e.Src], ids[e.Tgt], e.Label, props); err != nil {
			return nil, fmt.Errorf("spade: neo4j store: %w", err)
		}
	}
	return db, nil
}

// transformNative converts either backend's artifact to the common
// model; the Neo4j path performs the bulk extraction.
func transformNative(n capture.Native) (*graph.Graph, error) {
	out, ok := n.(Output)
	if !ok {
		return nil, fmt.Errorf("spade: transform: unexpected native type %T", n)
	}
	if out.DB != nil {
		g, err := out.DB.Export()
		if err != nil {
			return nil, fmt.Errorf("spade: transform: %w", err)
		}
		return g, nil
	}
	g, err := parseDOT(out.DOT)
	if err != nil {
		return nil, fmt.Errorf("spade: transform: %w", err)
	}
	return g, nil
}
