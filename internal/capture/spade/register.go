package spade

import (
	"fmt"

	"provmark/internal/capture"
	"provmark/internal/neo4jsim"
)

// Registry wiring: "spade" is the Graphviz-storage baseline (the
// paper's spg profile), "spn" the same simulator with Neo4j storage.
// Both accept the config.ini option vocabulary via Options.Params.
func init() {
	capture.MustRegister("spade", func(opts capture.Options) (capture.Recorder, error) {
		return build(opts, false)
	})
	capture.MustRegister("spn", func(opts capture.Options) (capture.Recorder, error) {
		return build(opts, true)
	})
}

func build(opts capture.Options, neo4j bool) (capture.Recorder, error) {
	cfg := DefaultConfig()
	cfg.Simplify = opts.Bool("simplify", cfg.Simplify)
	cfg.IORuns = opts.Bool("ioruns", cfg.IORuns)
	cfg.Versioning = opts.Bool("versioning", cfg.Versioning)
	cfg.BugRandomEdgeProperty = opts.Bool("bug_random_edge_property", cfg.BugRandomEdgeProperty)
	cfg.BugIORunsPropertyName = opts.Bool("bug_ioruns_property_name", cfg.BugIORunsPropertyName)
	reporter, _ := opts.Param("reporter")
	switch reporter {
	case "", "audit":
	case "camflow":
		cfg.Reporter = ReporterCamFlow
	default:
		return nil, fmt.Errorf("spade: unknown reporter %q", reporter)
	}
	storage, _ := opts.Param("storage")
	switch storage {
	case "", "dot":
	case "neo4j":
		neo4j = true
	default:
		return nil, fmt.Errorf("spade: unknown storage %q", storage)
	}
	if neo4j {
		cfg = cfg.WithNeo4jStorage(dbOptions(opts))
	}
	return New(cfg), nil
}

func dbOptions(opts capture.Options) neo4jsim.Options {
	db := neo4jsim.Options{}
	if opts.Fast {
		db = neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1}
	}
	db.WarmupPages = opts.Int("warmup_pages", db.WarmupPages)
	db.ScanRoundsPerRow = opts.Int("scan_rounds", db.ScanRoundsPerRow)
	return db
}
