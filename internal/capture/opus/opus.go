// Package opus simulates OPUS 0.1.0.26: user-space provenance capture
// by interposition on dynamically-linked C library calls, stored in a
// Neo4j database (simulated by neo4jsim). Consequences modelled from
// the paper:
//
//   - OPUS sees *attempted* calls, so failed syscalls produce the same
//     structure with a retval property of -1 (the Alice use case);
//   - it is blind to anything that bypasses libc interposition: raw
//     clone(2) and tee, plus calls outside its interposition list
//     (mknodat, setresuid, setresgid);
//   - pure read/write activity on already-open descriptors (read,
//     write, pread, pwrite, fchmod, fchown) does not change the
//     process's fd state and is not recorded by the default config;
//   - its Provenance Versioning Model yields larger graphs (per-call
//     event nodes, global name nodes, local fd nodes, version chains),
//     and the process node carries the whole environment, which is why
//     OPUS graphs are big and slow to extract (Figures 6 and 9).
package opus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/neo4jsim"
	"provmark/internal/oskernel"
)

// Config tunes the OPUS simulator.
type Config struct {
	// RecordReadsWrites enables the non-default configuration that
	// tracks read/write activity.
	RecordReadsWrites bool
	// DB passes storage-cost options through to the Neo4j simulator.
	DB neo4jsim.Options
}

// DefaultConfig is the paper's baseline configuration.
func DefaultConfig() Config { return Config{} }

// Recorder is the OPUS simulator.
type Recorder struct {
	cfg Config
}

var _ capture.Recorder = (*Recorder)(nil)

// New builds an OPUS recorder.
func New(cfg Config) *Recorder { return &Recorder{cfg: cfg} }

// Name implements capture.Recorder.
func (r *Recorder) Name() string { return "opus" }

// DefaultTrials implements capture.Recorder: any two OPUS runs are
// usually consistent (Section 3.2).
func (r *Recorder) DefaultTrials() int { return 2 }

// FilterGraphs implements capture.Recorder (false for OPUS).
func (r *Recorder) FilterGraphs() bool { return false }

// Output wraps the Neo4j database an OPUS run produced.
type Output struct {
	DB *neo4jsim.DB
}

// Format implements capture.Native.
func (Output) Format() string { return "neo4j" }

// interposed is OPUS's interposition list: the libc symbols it wraps.
var interposed = map[string]bool{
	"open": true, "openat": true, "creat": true, "close": true,
	"dup": true, "dup2": true, "dup3": true,
	"link": true, "linkat": true, "symlink": true, "symlinkat": true,
	"mknod": true, // mknodat is absent from the wrapper list
	"read":  true, "pread": true, "write": true, "pwrite": true,
	"rename": true, "renameat": true, "truncate": true, "ftruncate": true,
	"unlink": true, "unlinkat": true,
	"fork": true, "vfork": true, "execve": true, "exit": true, "kill": true,
	"chmod": true, "fchmodat": true, "chown": true, "fchownat": true,
	"fchmod": true, "fchown": true,
	"setuid": true, "setreuid": true, "setgid": true, "setregid": true,
	"pipe": true, "pipe2": true,
}

// fdOnly marks interposed calls the default config skips because they
// only perform read/write-style activity on existing descriptors.
var fdOnly = map[string]bool{
	"read": true, "pread": true, "write": true, "pwrite": true,
	"fchmod": true, "fchown": true,
}

// Record implements capture.Recorder.
func (r *Recorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := benchprog.Run(k, prog, v); err != nil {
		return nil, fmt.Errorf("opus: record %s/%s: %w", prog.Name, v, err)
	}
	k.Unregister(tap)
	rng := rand.New(rand.NewSource(int64(trial)*6151 + int64(len(prog.Name))*13007 + int64(v)*3))
	db := neo4jsim.New(r.cfg.DB)
	b := &builder{r: r, db: db, rng: rng,
		tsOffset:   rng.Int63n(1_000_000_000_000),
		procNode:   make(map[int]neo4jsim.NodeID),
		localNode:  make(map[string]neo4jsim.NodeID),
		globalNode: make(map[string]neo4jsim.NodeID),
	}
	for _, ev := range tap.LibcEvents {
		b.handle(ev)
	}
	return Output{DB: db}, nil
}

// Transform implements capture.Recorder: bulk-extract the database.
// This is the expensive step (Neo4j warm-up plus per-row decoding).
func (r *Recorder) Transform(n capture.Native) (*graph.Graph, error) {
	out, ok := n.(Output)
	if !ok {
		return nil, fmt.Errorf("opus: transform: unexpected native type %T", n)
	}
	g, err := out.DB.Export()
	if err != nil {
		return nil, fmt.Errorf("opus: transform: %w", err)
	}
	return g, nil
}

type builder struct {
	r   *Recorder
	db  *neo4jsim.DB
	rng *rand.Rand
	// tsOffset shifts every recorded timestamp: real runs happen at
	// different wall-clock times, so timestamps are volatile data the
	// generalization stage must discard.
	tsOffset   int64
	procNode   map[int]neo4jsim.NodeID
	localNode  map[string]neo4jsim.NodeID // pid:fd -> local node
	globalNode map[string]neo4jsim.NodeID // path -> global name node
	versionCtr map[string]int
}

// stamp renders a per-trial-shifted timestamp.
func (b *builder) stamp(ev oskernel.LibcEvent) string {
	return strconv.FormatInt(ev.Time.UnixNano()+b.tsOffset, 10)
}

func (b *builder) volatileID() string {
	return strconv.FormatInt(int64(b.rng.Uint32()), 16)
}

// proc returns the process node, creating it with the full environment
// (the properties that make OPUS graphs big).
func (b *builder) proc(ev oskernel.LibcEvent) neo4jsim.NodeID {
	if id, ok := b.procNode[ev.PID]; ok {
		return id
	}
	props := map[string]string{
		"pid":          strconv.Itoa(ev.PID),
		"cmdline":      ev.Comm,
		"exe":          ev.Exe,
		"node_id":      b.volatileID(),
		"startup_time": b.stamp(ev),
	}
	for _, kv := range ev.Environ {
		if eq := strings.IndexByte(kv, '='); eq > 0 {
			props["env:"+kv[:eq]] = kv[eq+1:]
		}
	}
	id := b.db.CreateNode("Process", props)
	b.procNode[ev.PID] = id
	return id
}

// eventNode records the syscall itself, with its return value — present
// even for failed calls.
func (b *builder) eventNode(ev oskernel.LibcEvent) neo4jsim.NodeID {
	return b.db.CreateNode("SyscallEvent", map[string]string{
		"call":    ev.Call,
		"retval":  strconv.FormatInt(ev.Ret, 10),
		"ts":      b.stamp(ev),
		"node_id": b.volatileID(),
	})
}

// global returns the name node for a path.
func (b *builder) global(path string) neo4jsim.NodeID {
	if id, ok := b.globalNode[path]; ok {
		return id
	}
	id := b.db.CreateNode("Global", map[string]string{"name": path})
	b.globalNode[path] = id
	return id
}

// local returns the fd resource node for pid:fd.
func (b *builder) local(pid int, fd string) neo4jsim.NodeID {
	key := strconv.Itoa(pid) + ":" + fd
	if id, ok := b.localNode[key]; ok {
		return id
	}
	id := b.db.CreateNode("Local", map[string]string{"fd": fd})
	b.localNode[key] = id
	return id
}

func (b *builder) version(path string) neo4jsim.NodeID {
	if b.versionCtr == nil {
		b.versionCtr = map[string]int{}
	}
	b.versionCtr[path]++
	return b.db.CreateNode("Version", map[string]string{
		"of":      path,
		"version": strconv.Itoa(b.versionCtr[path]),
	})
}

func (b *builder) rel(from, to neo4jsim.NodeID, typ string) {
	if _, err := b.db.CreateRel(from, to, typ, map[string]string{"rel_id": b.volatileID()}); err != nil {
		panic("opus: rel: " + err.Error()) // endpoints created above
	}
}

func (b *builder) handle(ev oskernel.LibcEvent) {
	if !interposed[ev.Call] {
		return
	}
	if fdOnly[ev.Call] && !b.r.cfg.RecordReadsWrites {
		return
	}
	p := b.proc(ev)
	switch ev.Call {
	case "open", "openat", "creat":
		// Four new nodes for open: the event, the global name, the
		// local fd binding, and the initial version (Section 4.1).
		evn := b.eventNode(ev)
		g := b.global(arg(ev, 0))
		ver := b.version(arg(ev, 0))
		b.rel(evn, p, "PERFORMED_BY")
		b.rel(g, ver, "NAMED")
		if ev.Ret >= 0 {
			l := b.local(ev.PID, strconv.FormatInt(ev.Ret, 10))
			b.rel(l, p, "BOUND_TO")
			b.rel(ver, l, "VERSION_OF")
		} else {
			b.rel(evn, g, "TOUCHED")
		}
	case "close":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		l := b.local(ev.PID, arg(ev, 0))
		b.rel(evn, l, "CLOSED")
	case "read", "pread", "write", "pwrite", "fchmod", "fchown":
		// Reached only under the non-default RecordReadsWrites config.
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		l := b.local(ev.PID, arg(ev, 0))
		b.rel(evn, l, "TOUCHED")
	case "dup", "dup2", "dup3":
		// Two added nodes, not directly connected to each other, both
		// connected to the process (Section 4.1): the syscall event and
		// the new fd resource.
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		if ev.Ret >= 0 {
			l := b.local(ev.PID, strconv.FormatInt(ev.Ret, 10))
			b.rel(l, p, "BOUND_TO")
		}
	case "link", "linkat", "symlink", "symlinkat":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		gOld := b.global(arg(ev, 0))
		gNew := b.global(arg(ev, 1))
		b.rel(gNew, gOld, "ALIAS_OF")
		b.rel(evn, gNew, "TOUCHED")
	case "mknod":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		g := b.global(arg(ev, 0))
		ver := b.version(arg(ev, 0))
		b.rel(g, ver, "NAMED")
		b.rel(evn, g, "TOUCHED")
	case "rename", "renameat":
		// Figure 1(c): around a dozen nodes — the event, both names,
		// version chain on both sides, and the fd-independent binding.
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		gOld := b.global(arg(ev, 0))
		gNew := b.global(arg(ev, 1))
		vOld := b.version(arg(ev, 0))
		vNew := b.version(arg(ev, 1))
		b.rel(gOld, vOld, "NAMED")
		b.rel(gNew, vNew, "NAMED")
		b.rel(vNew, vOld, "DERIVED_FROM")
		b.rel(evn, gOld, "TOUCHED")
		b.rel(evn, gNew, "TOUCHED")
	case "truncate":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		g := b.global(arg(ev, 0))
		ver := b.version(arg(ev, 0))
		b.rel(g, ver, "NAMED")
		b.rel(evn, g, "TOUCHED")
	case "ftruncate":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		l := b.local(ev.PID, arg(ev, 0))
		b.rel(evn, l, "TOUCHED")
	case "unlink", "unlinkat":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		g := b.global(arg(ev, 0))
		b.rel(evn, g, "TOUCHED")
	case "fork", "vfork":
		// Large for OPUS (Section 4.2): a full child process node with
		// its own environment, plus rebinding of every inherited fd.
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		if ev.Ret > 0 {
			childEv := ev
			childEv.PID = int(ev.Ret)
			child := b.proc(childEv)
			b.rel(child, p, "FORKED_FROM")
			b.rel(evn, child, "CREATED")
			for key, l := range b.localNode {
				if strings.HasPrefix(key, strconv.Itoa(ev.PID)+":") {
					fd := key[strings.IndexByte(key, ':')+1:]
					childL := b.local(childEv.PID, fd)
					b.rel(childL, child, "BOUND_TO")
					b.rel(childL, l, "INHERITED_FROM")
				}
			}
		}
	case "execve":
		// Just a few nodes (Section 4.2). The interposition library
		// re-initializes in the new image, refreshing the process
		// node's command line and environment.
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		g := b.global(arg(ev, 0))
		b.rel(evn, g, "EXECUTED")
		update := map[string]string{"cmdline": ev.Comm, "exe": ev.Exe}
		for _, kv := range ev.Environ {
			if eq := strings.IndexByte(kv, '='); eq > 0 {
				update["env:"+kv[:eq]] = kv[eq+1:]
			}
		}
		b.db.SetNodeProps(p, update)
	case "exit":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
	case "kill":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
	case "chmod", "fchmodat", "chown", "fchownat":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		g := b.global(arg(ev, 0))
		ver := b.version(arg(ev, 0))
		b.rel(g, ver, "NAMED")
		b.rel(evn, g, "TOUCHED")
	case "setuid", "setreuid", "setgid", "setregid":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
	case "pipe", "pipe2":
		evn := b.eventNode(ev)
		b.rel(evn, p, "PERFORMED_BY")
		for i := 0; i < 2; i++ {
			l := b.local(ev.PID, arg(ev, i))
			b.rel(l, p, "BOUND_TO")
			b.rel(evn, l, "CREATED")
		}
	}
}

func arg(ev oskernel.LibcEvent, i int) string {
	if i < len(ev.Args) {
		return ev.Args[i]
	}
	return ""
}
