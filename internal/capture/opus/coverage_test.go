package opus

import (
	"testing"

	"provmark/internal/benchprog"
)

// TestAllBenchmarksRecord exercises every per-call handler: each
// Table 2 benchmark and failure case records and transforms cleanly.
func TestAllBenchmarksRecord(t *testing.T) {
	rec := New(fastConfig())
	var progs []benchprog.Program
	for _, name := range benchprog.Names() {
		p, _ := benchprog.ByName(name)
		progs = append(progs, p)
	}
	progs = append(progs, benchprog.FailureCases()...)
	progs = append(progs, benchprog.ScaleProgram(3), benchprog.RepeatedReads(3), benchprog.PrivilegeEscalation())
	for _, prog := range progs {
		for _, v := range []benchprog.Variant{benchprog.Background, benchprog.Foreground} {
			n, err := rec.Record(prog, v, 0)
			if err != nil {
				t.Errorf("%s/%s: %v", prog.Name, v, err)
				continue
			}
			if _, err := rec.Transform(n); err != nil {
				t.Errorf("%s/%s transform: %v", prog.Name, v, err)
			}
		}
	}
}
