package opus

import (
	"provmark/internal/capture"
	"provmark/internal/neo4jsim"
)

// Registry wiring: "opus" with the config.ini option vocabulary.
func init() {
	capture.MustRegister("opus", func(opts capture.Options) (capture.Recorder, error) {
		cfg := DefaultConfig()
		if opts.Fast {
			cfg.DB = neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1}
		}
		cfg.DB.WarmupPages = opts.Int("warmup_pages", cfg.DB.WarmupPages)
		cfg.DB.ScanRoundsPerRow = opts.Int("scan_rounds", cfg.DB.ScanRoundsPerRow)
		cfg.RecordReadsWrites = opts.Bool("record_reads_writes", cfg.RecordReadsWrites)
		return New(cfg), nil
	})
}
