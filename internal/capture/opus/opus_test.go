package opus

import (
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
	"provmark/internal/neo4jsim"
)

func fastConfig() Config {
	return Config{DB: neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1}}
}

func record(t *testing.T, cfg Config, prog benchprog.Program, v benchprog.Variant, trial int) *graph.Graph {
	t.Helper()
	rec := New(cfg)
	n, err := rec.Record(prog, v, trial)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rec.Transform(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func byName(t *testing.T, name string) benchprog.Program {
	t.Helper()
	prog, ok := benchprog.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return prog
}

func TestNativeFormatIsNeo4j(t *testing.T) {
	rec := New(fastConfig())
	n, err := rec.Record(byName(t, "open"), benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Format() != "neo4j" {
		t.Errorf("format = %s", n.Format())
	}
	out, ok := n.(Output)
	if !ok || out.DB.NumNodes() == 0 {
		t.Error("no database produced")
	}
}

// TestProcessNodeCarriesEnvironment: the PVM process node records the
// full environment, the reason OPUS graphs are big.
func TestProcessNodeCarriesEnvironment(t *testing.T) {
	g := record(t, fastConfig(), byName(t, "open"), benchprog.Foreground, 0)
	found := false
	for _, n := range g.Nodes() {
		if n.Label == "Process" && n.Props["env:PATH"] != "" && n.Props["env:HOME"] != "" {
			found = true
		}
	}
	if !found {
		t.Error("process node lacks environment properties")
	}
}

// TestFailedCallRecordedWithRetval: the Alice use case.
func TestFailedCallRecordedWithRetval(t *testing.T) {
	g := record(t, fastConfig(), benchprog.FailedRename(), benchprog.Foreground, 0)
	found := false
	for _, n := range g.Nodes() {
		if n.Label == "SyscallEvent" && n.Props["call"] == "rename" {
			found = true
			if n.Props["retval"] != "-1" {
				t.Errorf("failed rename retval = %s", n.Props["retval"])
			}
		}
	}
	if !found {
		t.Error("failed rename not recorded")
	}
}

// TestCloneInvisible: raw clone never reaches the interposition layer.
func TestCloneInvisible(t *testing.T) {
	bg := record(t, fastConfig(), byName(t, "clone"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "clone"), benchprog.Foreground, 0)
	if bg.Size() != fg.Size() {
		t.Errorf("clone changed OPUS graph: bg=%d fg=%d", bg.Size(), fg.Size())
	}
}

// TestReadWriteSkippedByDefault but recordable via configuration.
func TestReadWriteSkippedByDefault(t *testing.T) {
	bg := record(t, fastConfig(), byName(t, "read"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "read"), benchprog.Foreground, 0)
	if bg.Size() != fg.Size() {
		t.Error("default config recorded a read")
	}
	cfg := fastConfig()
	cfg.RecordReadsWrites = true
	fgOn := record(t, cfg, byName(t, "read"), benchprog.Foreground, 0)
	if fgOn.Size() <= fg.Size() {
		t.Error("RecordReadsWrites did not record the read")
	}
}

// TestDupTwoDisconnectedNodes: the Section 4.1 observation — the event
// node and the new resource node are both connected to the process but
// not to each other.
func TestDupTwoDisconnectedNodes(t *testing.T) {
	bg := record(t, fastConfig(), byName(t, "dup"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "dup"), benchprog.Foreground, 0)
	if fg.NumNodes()-bg.NumNodes() != 2 {
		t.Fatalf("dup added %d nodes, want 2", fg.NumNodes()-bg.NumNodes())
	}
	// Identify the two new nodes by their labels.
	var evID, localID graph.ElemID
	for _, n := range fg.Nodes() {
		if n.Label == "SyscallEvent" && strings.HasPrefix(n.Props["call"], "dup") {
			evID = n.ID
		}
		if n.Label == "Local" && n.Props["fd"] != "" && bgLacksLocal(bg, n.Props["fd"]) {
			localID = n.ID
		}
	}
	if evID == "" || localID == "" {
		t.Fatal("dup nodes not found")
	}
	for _, e := range fg.Edges() {
		if (e.Src == evID && e.Tgt == localID) || (e.Src == localID && e.Tgt == evID) {
			t.Error("dup event and resource nodes are directly connected")
		}
	}
}

func bgLacksLocal(bg *graph.Graph, fd string) bool {
	for _, n := range bg.Nodes() {
		if n.Label == "Local" && n.Props["fd"] == fd {
			return false
		}
	}
	return true
}

// TestMknodatNotInterposed: mknod is wrapped, mknodat is not.
func TestMknodatNotInterposed(t *testing.T) {
	bgAt := record(t, fastConfig(), byName(t, "mknodat"), benchprog.Background, 0)
	fgAt := record(t, fastConfig(), byName(t, "mknodat"), benchprog.Foreground, 0)
	if bgAt.Size() != fgAt.Size() {
		t.Error("mknodat recorded despite missing wrapper")
	}
	bg := record(t, fastConfig(), byName(t, "mknod"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "mknod"), benchprog.Foreground, 0)
	if fg.Size() <= bg.Size() {
		t.Error("mknod not recorded")
	}
}

// TestForkIsLarge: OPUS fork graphs are large (child process node with
// environment plus fd rebinding).
func TestForkIsLarge(t *testing.T) {
	bg := record(t, fastConfig(), byName(t, "fork"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "fork"), benchprog.Foreground, 0)
	delta := fg.Size() - bg.Size()
	if delta < 4 {
		t.Errorf("fork added only %d elements; OPUS fork graphs should be large", delta)
	}
}

// TestRenameDozenNodes: Figure 1c's shape — event, names, versions.
func TestRenameAddsNameAndVersionChain(t *testing.T) {
	bg := record(t, fastConfig(), byName(t, "rename"), benchprog.Background, 0)
	fg := record(t, fastConfig(), byName(t, "rename"), benchprog.Foreground, 0)
	delta := fg.NumNodes() - bg.NumNodes()
	if delta < 5 {
		t.Errorf("rename added %d nodes, want >=5 (event, two names, two versions)", delta)
	}
	labels := map[string]int{}
	for _, n := range fg.Nodes() {
		labels[n.Label]++
	}
	if labels["Global"] < 3 || labels["Version"] < 2 {
		t.Errorf("labels = %v", labels)
	}
}

func TestRecorderMetadata(t *testing.T) {
	rec := New(fastConfig())
	if rec.Name() != "opus" || rec.DefaultTrials() != 2 || rec.FilterGraphs() {
		t.Error("metadata wrong")
	}
}
