// Package capture defines the recorder abstraction ProvMark drives: a
// provenance capture tool that can record one run of a benchmark
// program into its native output format, plus a transformation from
// that native format into the common property-graph model. The three
// tools the paper studies live in the spade, opus and camflow
// subpackages.
package capture

import (
	"provmark/internal/benchprog"
	"provmark/internal/graph"
)

// Native is a tool-specific recording artifact (DOT text, a Neo4j-sim
// database, PROV-JSON bytes). The transformation stage converts it to
// the common format.
type Native interface {
	// Format names the concrete serialization, e.g. "dot", "neo4j",
	// "prov-json".
	Format() string
}

// Recorder is one provenance capture tool under benchmark.
type Recorder interface {
	// Name identifies the tool ("spade", "opus", "camflow").
	Name() string
	// DefaultTrials is how many runs per variant the recording stage
	// performs by default; tools with run-to-run variation need more.
	DefaultTrials() int
	// FilterGraphs reports whether obviously incomplete trial graphs
	// should be dropped before similarity grouping (the config.ini
	// filtergraphs flag; default true only for CamFlow).
	FilterGraphs() bool
	// Record executes one trial of the given benchmark variant in a
	// fresh kernel and returns the tool's native output. trial seeds
	// the tool's volatile data (timestamps, identifiers).
	Record(prog benchprog.Program, v benchprog.Variant, trial int) (Native, error)
	// Transform converts a native recording to the common model.
	Transform(n Native) (*graph.Graph, error)
}

// Complete is an optional interface a Recorder implements when it can
// judge whether a trial graph is obviously incomplete (used by the
// graph-filtering mechanism).
type Complete interface {
	CompleteGraph(g *graph.Graph) bool
}
