package capture_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
)

// stubNative is a minimal Native for registry tests.
type stubNative struct{}

func (stubNative) Format() string { return "stub" }

// stubRecorder is a minimal legacy Recorder.
type stubRecorder struct {
	name    string
	filter  bool
	records int
}

func (r *stubRecorder) Name() string       { return r.name }
func (r *stubRecorder) DefaultTrials() int { return 2 }
func (r *stubRecorder) FilterGraphs() bool { return r.filter }
func (r *stubRecorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	r.records++
	return stubNative{}, nil
}
func (r *stubRecorder) Transform(n capture.Native) (*graph.Graph, error) {
	return graph.New(), nil
}

func TestRegisterAndOpen(t *testing.T) {
	err := capture.Register("test-stub", func(opts capture.Options) (capture.Recorder, error) {
		return &stubRecorder{name: "test-stub", filter: opts.Bool("filtergraphs", false)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := capture.Open("test-stub", capture.Options{
		Params: map[string]string{"filtergraphs": "true"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name() != "test-stub" || !rec.FilterGraphs() {
		t.Errorf("opened %q filter=%v, want test-stub with filtering", rec.Name(), rec.FilterGraphs())
	}
	found := false
	for _, name := range capture.Backends() {
		if name == "test-stub" {
			found = true
		}
	}
	if !found {
		t.Errorf("Backends() = %v, missing test-stub", capture.Backends())
	}
}

func TestRegisterErrors(t *testing.T) {
	factory := func(capture.Options) (capture.Recorder, error) {
		return &stubRecorder{name: "dup"}, nil
	}
	if err := capture.Register("test-dup", factory); err != nil {
		t.Fatal(err)
	}
	if err := capture.Register("test-dup", factory); err == nil {
		t.Error("double register accepted")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("double register error = %v", err)
	}
	if err := capture.Register("", factory); err == nil {
		t.Error("empty name accepted")
	}
	if err := capture.Register("test-nil", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	factory := func(capture.Options) (capture.Recorder, error) {
		return &stubRecorder{name: "must"}, nil
	}
	capture.MustRegister("test-must", factory)
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	capture.MustRegister("test-must", factory)
}

func TestOpenUnknownBackend(t *testing.T) {
	_, err := capture.Open("test-no-such-backend", capture.Options{})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	if !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("error = %v", err)
	}
}

func TestOpenFactoryError(t *testing.T) {
	capture.MustRegister("test-broken", func(capture.Options) (capture.Recorder, error) {
		return nil, fmt.Errorf("bad wiring")
	})
	_, err := capture.Open("test-broken", capture.Options{})
	if err == nil || !strings.Contains(err.Error(), "bad wiring") {
		t.Errorf("factory error not surfaced: %v", err)
	}
}

func TestOptionsHelpers(t *testing.T) {
	opts := capture.Options{Params: map[string]string{
		"flag": "true", "count": "7", "junk": "zzz",
	}}
	if !opts.Bool("flag", false) {
		t.Error("Bool(flag) = false")
	}
	if opts.Bool("junk", false) || !opts.Bool("junk", true) {
		t.Error("malformed bool should fall back to default")
	}
	if opts.Int("count", 0) != 7 {
		t.Errorf("Int(count) = %d", opts.Int("count", 0))
	}
	if opts.Int("junk", 3) != 3 || opts.Int("absent", 5) != 5 {
		t.Error("malformed/absent int should fall back to default")
	}
	if v, ok := opts.Param("flag"); !ok || v != "true" {
		t.Errorf("Param(flag) = %q, %v", v, ok)
	}
}

func TestContextAdapter(t *testing.T) {
	stub := &stubRecorder{name: "adapted"}
	rec := capture.WithContext(stub)
	if rec.Name() != "adapted" || rec.DefaultTrials() != 2 {
		t.Error("adapter does not promote legacy methods")
	}
	if _, err := rec.Record(context.Background(), benchprog.Program{}, benchprog.Foreground, 0); err != nil {
		t.Fatalf("adapted record: %v", err)
	}
	if stub.records != 1 {
		t.Errorf("legacy Record called %d times, want 1", stub.records)
	}

	// A cancelled context stops the adapter before the legacy call.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rec.Record(ctx, benchprog.Program{}, benchprog.Foreground, 1); err != context.Canceled {
		t.Errorf("cancelled record err = %v, want context.Canceled", err)
	}
	if stub.records != 1 {
		t.Errorf("legacy Record ran under a cancelled context (%d calls)", stub.records)
	}
}

func TestAsCompleteSeesThroughAdapter(t *testing.T) {
	// The stub recorder does not implement Complete.
	if _, ok := capture.AsComplete(capture.WithContext(&stubRecorder{name: "x"})); ok {
		t.Error("AsComplete invented a Complete implementation")
	}
	// completeStub does; the adapter must not hide it.
	if _, ok := capture.AsComplete(capture.WithContext(&completeStub{})); !ok {
		t.Error("AsComplete does not unwrap the context adapter")
	}
}

// completeStub is a stub recorder that can judge graph completeness.
type completeStub struct {
	stubRecorder
}

func (c *completeStub) CompleteGraph(g *graph.Graph) bool { return true }
