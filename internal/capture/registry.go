package capture

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Options configures a backend opened through the registry. The zero
// value selects the backend's paper-baseline configuration.
type Options struct {
	// Fast substitutes cheap storage costs for the full Neo4j
	// simulation (warm-up and scan rounds), keeping matrix-style runs
	// in the hundreds of milliseconds. Timing experiments that want the
	// paper's cost shapes leave it false.
	Fast bool
	// Params carries backend-specific string keys in the config.ini
	// vocabulary of Appendix A.4 (e.g. simplify, ioruns, versioning,
	// reporter, storage, record_denied, record_reads_writes,
	// warmup_pages, scan_rounds). Unknown keys are ignored so profiles
	// can carry forward-compatible settings.
	Params map[string]string
}

// Param reads a raw backend-specific key.
func (o Options) Param(key string) (string, bool) {
	v, ok := o.Params[key]
	return v, ok
}

// Bool reads a boolean param, returning def when absent or malformed.
func (o Options) Bool(key string, def bool) bool {
	v, ok := o.Params[key]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// Int reads an integer param, returning def when absent or malformed.
func (o Options) Int(key string, def int) int {
	v, ok := o.Params[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Factory builds a recorder from registry options.
type Factory func(Options) (Recorder, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a backend factory under a name. It errors on an empty
// name, a nil factory, or a name that is already taken, so tests can
// probe misuse; init-time registration uses MustRegister.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("capture: register: empty backend name")
	}
	if f == nil {
		return fmt.Errorf("capture: register %q: nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("capture: register %q: backend already registered", name)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register that panics on error, for use from a
// backend package's init function.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Open instantiates a registered backend by name. Backends register
// themselves from their package init, so callers import them for side
// effects only:
//
//	import _ "provmark/internal/capture/spade"
//
//	rec, err := capture.Open("spade", capture.Options{})
func Open(name string, opts Options) (Recorder, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("capture: unknown backend %q (have %v)", name, Backends())
	}
	rec, err := f(opts)
	if err != nil {
		return nil, fmt.Errorf("capture: open %q: %w", name, err)
	}
	return rec, nil
}

// OpenContext is Open returning the context-aware recorder view.
func OpenContext(name string, opts Options) (RecorderContext, error) {
	rec, err := Open(name, opts)
	if err != nil {
		return nil, err
	}
	return WithContext(rec), nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
