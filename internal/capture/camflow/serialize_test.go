package camflow

import (
	"errors"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/provmark"
)

// TestSerializeOnceBreaksRepeatTrials documents why the 0.4.5
// re-serialization workaround exists (Section 3.2): under the old
// serialize-once policy, each later trial is missing the structures an
// earlier session already emitted, so no two trials agree and the
// pipeline cannot generalize.
func TestSerializeOnceBreaksRepeatTrials(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterPeriod = 0
	cfg.SerializeOnce = true
	rec := New(cfg)
	prog, _ := benchprog.ByName("open")
	n0, err := rec.Record(prog, benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	g0, err := rec.Transform(n0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := rec.Record(prog, benchprog.Foreground, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := rec.Transform(n1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Size() >= g0.Size() {
		t.Errorf("second trial (%d elements) not smaller than first (%d): serialize-once not modelled",
			g1.Size(), g0.Size())
	}

	// The full pipeline fails with the honest error.
	rec2 := New(cfg)
	_, err = provmark.NewRunner(rec2, provmark.Config{Trials: 3}).Run(prog)
	if !errors.Is(err, provmark.ErrInconsistentTrials) {
		t.Errorf("want ErrInconsistentTrials under serialize-once, got %v", err)
	}
}

// TestReserializationWorkaroundRestoresRepeatability: the 0.4.5
// default (SerializeOnce off) yields consistent trials.
func TestReserializationWorkaroundRestoresRepeatability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterPeriod = 0
	prog, _ := benchprog.ByName("open")
	res, err := provmark.NewRunner(New(cfg), provmark.Config{Trials: 2}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Errorf("open empty: %s", res.Reason)
	}
}
