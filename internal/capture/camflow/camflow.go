// Package camflow simulates CamFlow 0.4.5: whole-system provenance
// captured inside the kernel via Linux Security Module hooks, relayed
// to user space and serialized as W3C PROV-JSON. Behaviours modelled
// from the paper:
//
//   - the hook set of 0.4.5 covers file open/permission, inode create/
//     link/rename/unlink/setattr, credential changes, execve, task
//     creation/exit and pipe splice (tee) — but not dup (no hook
//     exists), symlink, mknod or pipe creation (NR in Table 2), and the
//     eventual free after close is not attributable to the call (LP);
//   - denied operations are observable in principle but not recorded by
//     0.4.5 (the Alice use case finding);
//   - entities and activities are versioned: every state change yields
//     a fresh node linked to its predecessor;
//   - files are represented as an inode object node plus a separate
//     path entity (Figure 1b: rename adds a new path node; the old path
//     does not appear);
//   - whole-system recording relates runs to one graph; re-serialization
//     across recording sessions (the 0.4.5 workaround) plus relay
//     timing produce occasional run-to-run structural jitter, which
//     ProvMark absorbs with extra trials, graph filtering, and
//     smallest-consistent-pair selection.
package camflow

import (
	"fmt"
	"math/rand"
	"strconv"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/oskernel"
	"provmark/internal/provjson"
)

// Config tunes the CamFlow simulator.
type Config struct {
	// RecordDenied enables recording of denied permission checks
	// (off in 0.4.5's default configuration).
	RecordDenied bool
	// JitterPeriod makes every JitterPeriod-th trial carry extra relay
	// structure (an extra boot entity), modelling the run-to-run
	// variation Section 3.2 describes. Zero disables jitter.
	JitterPeriod int
	// CorruptPeriod makes every CorruptPeriod-th trial lose its machine
	// agent (a relay cut mid-serialization), the obviously-incomplete
	// graphs the filtergraphs mechanism drops. Zero disables corruption;
	// it is a failure-injection knob for tests, not a 0.4.5 behaviour.
	CorruptPeriod int
	// SerializeOnce emulates CamFlow versions before 0.4.5, which only
	// serialized each node and edge the first time it was seen. Because
	// the whole-system graph persists across recording sessions, every
	// trial after the first comes out missing the structures already
	// serialized — which is exactly why repeat-run benchmarking needed
	// the re-serialization workaround the paper describes (Section 3.2).
	SerializeOnce bool
	// FilterGraphs mirrors the config.ini flag (default true for
	// CamFlow).
	FilterGraphs bool
}

// DefaultConfig is the paper's baseline configuration.
func DefaultConfig() Config {
	return Config{JitterPeriod: 3, FilterGraphs: true}
}

// Recorder is the CamFlow simulator.
type Recorder struct {
	cfg Config
	// bootID is stable for the lifetime of the recorder (one "machine
	// boot"), like CamFlow's whole-system graph identity.
	bootID string
	// serialized tracks structure already emitted in earlier sessions
	// when SerializeOnce is set (keyed by a structural signature).
	serialized map[string]bool
}

var _ capture.Recorder = (*Recorder)(nil)
var _ capture.Complete = (*Recorder)(nil)

// New builds a CamFlow recorder.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg, bootID: "boot-cafe0425", serialized: make(map[string]bool)}
}

// Name implements capture.Recorder.
func (r *Recorder) Name() string { return "camflow" }

// DefaultTrials implements capture.Recorder: CamFlow needs extra trials
// to ride out serialization jitter (the paper's batch run used 11).
func (r *Recorder) DefaultTrials() int { return 5 }

// FilterGraphs implements capture.Recorder.
func (r *Recorder) FilterGraphs() bool { return r.cfg.FilterGraphs }

// Output is CamFlow's native PROV-JSON artifact.
type Output struct {
	JSON []byte
}

// Format implements capture.Native.
func (Output) Format() string { return "prov-json" }

// Record implements capture.Recorder.
func (r *Recorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := benchprog.Run(k, prog, v); err != nil {
		return nil, fmt.Errorf("camflow: record %s/%s: %w", prog.Name, v, err)
	}
	k.Unregister(tap)
	rng := rand.New(rand.NewSource(int64(trial)*2861 + int64(len(prog.Name))*937 + int64(v)*11))
	jitter := r.cfg.JitterPeriod > 0 && trial%r.cfg.JitterPeriod == r.cfg.JitterPeriod-1
	g := r.build(tap.LSMEvents, rng, jitter)
	if r.cfg.CorruptPeriod > 0 && trial%r.cfg.CorruptPeriod == r.cfg.CorruptPeriod-1 {
		dropMachine(g)
	}
	if r.cfg.SerializeOnce {
		g = r.dropAlreadySerialized(g)
	}
	data, err := provjson.Marshal(g)
	if err != nil {
		return nil, fmt.Errorf("camflow: serialize: %w", err)
	}
	return Output{JSON: data}, nil
}

// Transform implements capture.Recorder.
func (r *Recorder) Transform(n capture.Native) (*graph.Graph, error) {
	out, ok := n.(Output)
	if !ok {
		return nil, fmt.Errorf("camflow: transform: unexpected native type %T", n)
	}
	g, err := provjson.Unmarshal(out.JSON)
	if err != nil {
		return nil, fmt.Errorf("camflow: transform: %w", err)
	}
	return g, nil
}

// CompleteGraph implements capture.Complete: a CamFlow graph missing
// its machine agent was cut off mid-relay and should be filtered.
func (r *Recorder) CompleteGraph(g *graph.Graph) bool {
	for _, n := range g.Nodes() {
		if n.Label == "agent" {
			return true
		}
	}
	return false
}

type builder struct {
	r       *Recorder
	g       *graph.Graph
	rng     *rand.Rand
	machine graph.ElemID
	// task versions: pid -> current activity node
	task    map[int]graph.ElemID
	taskVer map[int]int
	// object versions: kernel inode id -> current entity node
	object    map[uint64]graph.ElemID
	objectVer map[uint64]int
	pathNode  map[string]graph.ElemID
}

func (r *Recorder) build(events []oskernel.LSMEvent, rng *rand.Rand, jitter bool) *graph.Graph {
	b := &builder{
		r:         r,
		g:         graph.New(),
		rng:       rng,
		task:      make(map[int]graph.ElemID),
		taskVer:   make(map[int]int),
		object:    make(map[uint64]graph.ElemID),
		objectVer: make(map[uint64]int),
		pathNode:  make(map[string]graph.ElemID),
	}
	b.machine = b.g.AddNode("agent", graph.Properties{
		"prov:type":  "machine",
		"cf:boot_id": r.bootID,
		"cf:date":    b.stamp(),
	})
	if jitter {
		// Relay timing occasionally re-serializes the boot entity.
		boot := b.g.AddNode("entity", graph.Properties{
			"prov:type": "boot",
			"cf:seq":    b.stamp(),
		})
		b.mustEdge(boot, b.machine, "wasAttributedTo", nil)
	}
	for _, ev := range events {
		b.handle(ev)
	}
	return b.g
}

func (b *builder) stamp() string {
	return strconv.FormatInt(1569326400000+int64(b.rng.Intn(1_000_000)), 10)
}

func (b *builder) mustEdge(src, tgt graph.ElemID, label string, extra graph.Properties) {
	props := graph.Properties{"cf:jiffies": b.stamp()}
	for k, v := range extra {
		props[k] = v
	}
	if _, err := b.g.AddEdge(src, tgt, label, props); err != nil {
		panic("camflow: edge: " + err.Error()) // endpoints created by builders
	}
}

// activity returns the current activity version for a pid.
func (b *builder) activity(ev oskernel.LSMEvent) graph.ElemID {
	if id, ok := b.task[ev.PID]; ok {
		return id
	}
	return b.newActivityVersion(ev, "task")
}

// newActivityVersion creates the next version of a task's activity node
// and links it to its predecessor and the machine agent.
func (b *builder) newActivityVersion(ev oskernel.LSMEvent, typ string) graph.ElemID {
	b.taskVer[ev.PID]++
	id := b.g.AddNode("activity", graph.Properties{
		"prov:type":  typ,
		"cf:pid":     strconv.Itoa(ev.PID),
		"cf:uid":     strconv.Itoa(ev.Cred.EUID),
		"cf:gid":     strconv.Itoa(ev.Cred.EGID),
		"cf:version": strconv.Itoa(b.taskVer[ev.PID]),
		"cf:date":    b.stamp(),
	})
	if prev, ok := b.task[ev.PID]; ok {
		b.mustEdge(id, prev, "wasInformedBy", graph.Properties{"cf:type": "version_activity"})
	} else {
		b.mustEdge(id, b.machine, "wasAssociatedWith", nil)
	}
	b.task[ev.PID] = id
	return id
}

// object returns the current entity version for an inode.
func (b *builder) objectEntity(ev oskernel.LSMEvent) graph.ElemID {
	if id, ok := b.object[ev.Inode]; ok {
		return id
	}
	return b.newObjectVersion(ev.Inode, ev.ObjType)
}

// newObjectVersion creates the next version of an inode's entity node.
func (b *builder) newObjectVersion(ino uint64, objType string) graph.ElemID {
	b.objectVer[ino]++
	id := b.g.AddNode("entity", graph.Properties{
		"prov:type":  objType,
		"cf:ino":     strconv.FormatUint(ino, 10),
		"cf:version": strconv.Itoa(b.objectVer[ino]),
		"cf:date":    b.stamp(),
	})
	if prev, ok := b.object[ino]; ok {
		b.mustEdge(id, prev, "wasDerivedFrom", graph.Properties{"cf:type": "version_entity"})
	}
	b.object[ino] = id
	return id
}

// pathEntity returns the path-name entity for a pathname, linked to the
// object it names (Figure 1b's separate path node).
func (b *builder) pathEntity(path string, obj graph.ElemID) graph.ElemID {
	if id, ok := b.pathNode[path]; ok {
		return id
	}
	id := b.g.AddNode("entity", graph.Properties{
		"prov:type":   "path",
		"cf:pathname": path,
		"cf:date":     b.stamp(),
	})
	b.pathNode[path] = id
	b.mustEdge(id, obj, "wasDerivedFrom", graph.Properties{"cf:type": "named"})
	return id
}

func (b *builder) handle(ev oskernel.LSMEvent) {
	if !ev.Allowed && !b.r.cfg.RecordDenied {
		return // 0.4.5 default: denied checks are not recorded
	}
	switch ev.Hook {
	case oskernel.HookFileOpen:
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		b.pathEntity(ev.Path, obj)
		b.mustEdge(act, obj, "used", graph.Properties{"cf:type": "open"})
	case oskernel.HookFilePermission:
		act := b.activity(ev)
		if ev.Access == "write" {
			// Writes version the entity.
			obj := b.objectEntity(ev)
			fresh := b.newObjectVersion(ev.Inode, ev.ObjType)
			_ = obj
			b.mustEdge(fresh, act, "wasGeneratedBy", graph.Properties{"cf:type": "write"})
		} else {
			obj := b.objectEntity(ev)
			b.mustEdge(act, obj, "used", graph.Properties{"cf:type": "read"})
		}
	case oskernel.HookInodeCreate:
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		b.pathEntity(ev.Path, obj)
		b.mustEdge(obj, act, "wasGeneratedBy", graph.Properties{"cf:type": "create"})
	case oskernel.HookInodeLink:
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		p := b.pathEntity(ev.AuxPath, obj)
		b.mustEdge(p, act, "wasGeneratedBy", graph.Properties{"cf:type": "link"})
	case oskernel.HookInodeRename:
		// Figure 1b: a new path node is associated with the file
		// object; the old path does not appear in the result.
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		p := b.pathEntity(ev.AuxPath, obj)
		b.mustEdge(p, act, "wasGeneratedBy", graph.Properties{"cf:type": "rename"})
	case oskernel.HookInodeUnlink:
		// Unlinking changes the inode's link count, so CamFlow versions
		// the entity in addition to recording the operation.
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		b.mustEdge(act, obj, "used", graph.Properties{"cf:type": "unlink"})
		fresh := b.newObjectVersion(ev.Inode, ev.ObjType)
		b.mustEdge(fresh, act, "wasGeneratedBy", graph.Properties{"cf:type": "unlink"})
	case oskernel.HookInodeSetattr:
		act := b.activity(ev)
		b.objectEntity(ev)
		fresh := b.newObjectVersion(ev.Inode, ev.ObjType)
		b.mustEdge(fresh, act, "wasGeneratedBy", graph.Properties{
			"cf:type":   "setattr",
			"cf:detail": ev.Detail,
		})
	case oskernel.HookTaskFixSetuid, oskernel.HookTaskFixSetgid:
		fresh := b.newActivityVersion(ev, "task")
		if err := b.g.SetProp(fresh, "cf:setid", ev.Detail); err != nil {
			panic("camflow: setid: " + err.Error())
		}
	case oskernel.HookBprmCheck:
		act := b.activity(ev)
		obj := b.objectEntity(ev)
		b.pathEntity(ev.Path, obj)
		fresh := b.newActivityVersion(ev, "task")
		_ = act
		b.mustEdge(fresh, obj, "used", graph.Properties{"cf:type": "exec"})
	case oskernel.HookTaskCreate:
		parent := b.activity(ev)
		// The child gets its activity node on its first own hook; the
		// creation edge is recorded eagerly from the parent side with a
		// placeholder child version.
		childEv := ev
		childEv.PID = childPIDFromDetail(ev.Detail)
		if childEv.PID > 0 {
			child := b.newActivityVersion(childEv, "task")
			b.mustEdge(child, parent, "wasInformedBy", graph.Properties{"cf:type": "clone"})
		}
	case oskernel.HookTaskExit:
		b.newActivityVersion(ev, "task_end")
	case oskernel.HookPipeSplice:
		act := b.activity(ev)
		in := b.objectEntity(ev)
		fresh := b.newObjectVersion(ev.AuxInode, "pipe")
		b.mustEdge(act, in, "used", graph.Properties{"cf:type": "splice_in"})
		b.mustEdge(fresh, act, "wasGeneratedBy", graph.Properties{"cf:type": "splice_out"})
	case oskernel.HookInodeSymlink, oskernel.HookInodeMknod, oskernel.HookPipeCreate, oskernel.HookTaskKill:
		// Hooks exist in the kernel but CamFlow 0.4.5 does not attach
		// to them (NR cells in Table 2).
	}
}

// dropAlreadySerialized emulates the pre-0.4.5 serialize-once policy:
// nodes whose identity (type + ino/pid + version) was emitted by an
// earlier session vanish from this session's output, taking their
// incident edges with them.
func (r *Recorder) dropAlreadySerialized(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	for _, n := range g.Nodes() {
		sig := n.Label + "|" + n.Props["prov:type"] + "|" + n.Props["cf:ino"] + "|" +
			n.Props["cf:pid"] + "|" + n.Props["cf:pathname"] + "|" + n.Props["cf:version"]
		if r.serialized[sig] {
			out.RemoveNode(n.ID)
		} else {
			r.serialized[sig] = true
		}
	}
	return out
}

// dropMachine removes the machine agent (and its incident edges),
// simulating a relay cut mid-serialization.
func dropMachine(g *graph.Graph) {
	for _, n := range g.Nodes() {
		if n.Label == "agent" {
			g.RemoveNode(n.ID)
			return
		}
	}
}

// childPIDFromDetail parses "fork pid=N" / "clone pid=N" detail strings.
func childPIDFromDetail(detail string) int {
	for i := 0; i+4 <= len(detail); i++ {
		if detail[i:i+4] == "pid=" {
			n, err := strconv.Atoi(detail[i+4:])
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}
