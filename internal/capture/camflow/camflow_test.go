package camflow

import (
	"encoding/json"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
)

func record(t *testing.T, cfg Config, prog benchprog.Program, v benchprog.Variant, trial int) *graph.Graph {
	t.Helper()
	rec := New(cfg)
	n, err := rec.Record(prog, v, trial)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rec.Transform(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func byName(t *testing.T, name string) benchprog.Program {
	t.Helper()
	prog, ok := benchprog.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return prog
}

func noJitter() Config {
	cfg := DefaultConfig()
	cfg.JitterPeriod = 0
	return cfg
}

func TestNativeFormatIsProvJSON(t *testing.T) {
	rec := New(DefaultConfig())
	n, err := rec.Record(byName(t, "open"), benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Format() != "prov-json" {
		t.Errorf("format = %s", n.Format())
	}
	out, ok := n.(Output)
	if !ok {
		t.Fatal("wrong native type")
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.JSON, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if _, ok := doc["activity"]; !ok {
		t.Error("PROV-JSON lacks an activity section")
	}
}

// TestFileHasObjectAndPathNodes: Figure 1b's separate inode-object and
// path entities.
func TestFileHasObjectAndPathNodes(t *testing.T) {
	g := record(t, noJitter(), byName(t, "open"), benchprog.Foreground, 0)
	var fileEnt, pathEnt bool
	for _, n := range g.Nodes() {
		if n.Label != "entity" {
			continue
		}
		switch n.Props["prov:type"] {
		case "file":
			fileEnt = true
		case "path":
			pathEnt = true
		}
	}
	if !fileEnt || !pathEnt {
		t.Errorf("file=%v path=%v entities", fileEnt, pathEnt)
	}
}

// TestRenameOldPathAbsent: the rename result associates a new path with
// the object; the old path does not appear in the delta.
func TestRenameOldPathAbsent(t *testing.T) {
	bg := record(t, noJitter(), byName(t, "rename"), benchprog.Background, 0)
	fg := record(t, noJitter(), byName(t, "rename"), benchprog.Foreground, 0)
	newInBg, newInFg := pathPresent(bg, "/stage/renamed.txt"), pathPresent(fg, "/stage/renamed.txt")
	if newInBg || !newInFg {
		t.Errorf("new path presence: bg=%v fg=%v", newInBg, newInFg)
	}
	// The old path never got a node in either variant: no hook fired
	// for it before the rename (the file was created by staging).
	if pathPresent(fg, "/stage/test.txt") {
		t.Error("old path node present in rename foreground")
	}
}

func pathPresent(g *graph.Graph, path string) bool {
	for _, n := range g.Nodes() {
		if n.Props["cf:pathname"] == path {
			return true
		}
	}
	return false
}

// TestDeniedOperationsSkippedByDefault but recordable.
func TestDeniedOperationsSkippedByDefault(t *testing.T) {
	prog := benchprog.FailedRename()
	bg := record(t, noJitter(), prog, benchprog.Background, 0)
	fg := record(t, noJitter(), prog, benchprog.Foreground, 0)
	if bg.Size() != fg.Size() {
		t.Error("denied rename recorded under default config")
	}
	cfg := noJitter()
	cfg.RecordDenied = true
	fgOn := record(t, cfg, prog, benchprog.Foreground, 0)
	if fgOn.Size() <= fg.Size() {
		t.Error("RecordDenied did not record the denied rename")
	}
}

// TestWriteVersionsEntity: writes create a new entity version derived
// from the previous one.
func TestWriteVersionsEntity(t *testing.T) {
	g := record(t, noJitter(), byName(t, "write"), benchprog.Foreground, 0)
	versionEdges := 0
	for _, e := range g.Edges() {
		if e.Label == "wasDerivedFrom" && e.Props["cf:type"] == "version_entity" {
			versionEdges++
		}
	}
	if versionEdges == 0 {
		t.Error("write produced no entity version chain")
	}
}

// TestSetidVersionsActivity: credential changes version the task.
func TestSetidVersionsActivity(t *testing.T) {
	bg := record(t, noJitter(), byName(t, "setuid"), benchprog.Background, 0)
	fg := record(t, noJitter(), byName(t, "setuid"), benchprog.Foreground, 0)
	count := func(g *graph.Graph) int {
		n := 0
		for _, e := range g.Edges() {
			if e.Label == "wasInformedBy" && e.Props["cf:type"] == "version_activity" {
				n++
			}
		}
		return n
	}
	if count(fg) <= count(bg) {
		t.Error("setuid did not version the activity")
	}
}

// TestJitterProducesDistinctStructure every JitterPeriod-th trial.
func TestJitterProducesDistinctStructure(t *testing.T) {
	cfg := DefaultConfig() // JitterPeriod = 3
	prog := byName(t, "open")
	clean := record(t, cfg, prog, benchprog.Foreground, 0)
	jittered := record(t, cfg, prog, benchprog.Foreground, 2) // trial%3 == 2
	if jittered.Size() <= clean.Size() {
		t.Errorf("jittered trial (%d) not larger than clean (%d)", jittered.Size(), clean.Size())
	}
	if graph.ShapeFingerprint(clean) == graph.ShapeFingerprint(jittered) {
		t.Error("jitter did not change structure")
	}
	// Two clean trials agree.
	clean2 := record(t, cfg, prog, benchprog.Foreground, 1)
	if graph.ShapeFingerprint(clean) != graph.ShapeFingerprint(clean2) {
		t.Error("clean trials disagree")
	}
}

func TestCompleteGraphDetectsMissingMachine(t *testing.T) {
	rec := New(DefaultConfig())
	g := record(t, DefaultConfig(), byName(t, "open"), benchprog.Foreground, 0)
	if !rec.CompleteGraph(g) {
		t.Error("complete graph reported incomplete")
	}
	empty := graph.New()
	empty.AddNode("entity", nil)
	if rec.CompleteGraph(empty) {
		t.Error("machine-less graph reported complete")
	}
}

// TestTeeRecordedViaSpliceHook: CamFlow is the only tool seeing tee.
func TestTeeRecordedViaSpliceHook(t *testing.T) {
	bg := record(t, noJitter(), byName(t, "tee"), benchprog.Background, 0)
	fg := record(t, noJitter(), byName(t, "tee"), benchprog.Foreground, 0)
	if fg.Size() <= bg.Size() {
		t.Error("tee not recorded")
	}
	spliceSeen := false
	for _, e := range fg.Edges() {
		if e.Props["cf:type"] == "splice_in" || e.Props["cf:type"] == "splice_out" {
			spliceSeen = true
		}
	}
	if !spliceSeen {
		t.Error("no splice edges in tee foreground graph")
	}
}

func TestBootIDStableAcrossTrials(t *testing.T) {
	rec := New(DefaultConfig())
	prog := byName(t, "open")
	ids := map[string]bool{}
	for trial := 0; trial < 2; trial++ {
		n, err := rec.Record(prog, benchprog.Foreground, trial)
		if err != nil {
			t.Fatal(err)
		}
		g, err := rec.Transform(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range g.Nodes() {
			if id, ok := node.Props["cf:boot_id"]; ok {
				ids[id] = true
			}
		}
	}
	if len(ids) != 1 {
		t.Errorf("boot id not stable: %v", ids)
	}
}

func TestRecorderMetadata(t *testing.T) {
	rec := New(DefaultConfig())
	if rec.Name() != "camflow" || rec.DefaultTrials() != 5 || !rec.FilterGraphs() {
		t.Error("metadata wrong")
	}
}
