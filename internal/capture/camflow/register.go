package camflow

import "provmark/internal/capture"

// Registry wiring: "camflow" with the config.ini option vocabulary.
func init() {
	capture.MustRegister("camflow", func(opts capture.Options) (capture.Recorder, error) {
		cfg := DefaultConfig()
		cfg.FilterGraphs = opts.Bool("filtergraphs", cfg.FilterGraphs)
		cfg.RecordDenied = opts.Bool("record_denied", cfg.RecordDenied)
		cfg.JitterPeriod = opts.Int("jitter_period", cfg.JitterPeriod)
		cfg.SerializeOnce = opts.Bool("serialize_once", cfg.SerializeOnce)
		return New(cfg), nil
	})
}
