package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full syntax is
//
//	//provmark:allow <code>... [-- reason]
//
// A directive suppresses findings of the listed codes on its own line
// (trailing-comment form) and on the line directly below (own-line
// form). Codes are validated against the registered catalogue —
// unknown codes are bad-allow errors — and a directive that matched
// nothing is an unused-allow warning, so annotations cannot outlive
// the exceptions they document.
const allowPrefix = "//provmark:allow"

// allowDirective is one parsed directive.
type allowDirective struct {
	file  string
	line  int
	col   int
	codes []Code
	// used flips when the directive suppresses at least one finding.
	used bool
}

// collectAllows parses every allow directive in the package.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// Everything after "--" is prose for the reader.
				if i := strings.Index(text, "--"); i >= 0 {
					text = text[:i]
				}
				pos := fset.Position(c.Slash)
				d := &allowDirective{file: pos.Filename, line: pos.Line, col: pos.Column}
				for _, word := range strings.Fields(text) {
					d.codes = append(d.codes, Code(word))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// covers reports whether the directive suppresses a finding of code
// at (file, line): same line or the line directly below the comment.
func (d *allowDirective) covers(file string, line int, code Code) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, c := range d.codes {
		if c == code {
			return true
		}
	}
	return false
}

// filterAllowed drops findings covered by a directive, marking the
// directives that earned their keep.
func filterAllowed(diags []Diagnostic, allows []*allowDirective) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.covers(d.File, d.Line, d.Code) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// checkAllows validates directive hygiene: unknown codes are errors,
// and a directive whose codes all belong to enabled analyzers yet
// suppressed nothing is a stale exception. Directives naming codes of
// disabled analyzers are exempt from the staleness check — with the
// owning analyzer off, nothing could have matched.
func checkAllows(allows []*allowDirective, enabled map[string]bool) []Diagnostic {
	known := knownCodes()
	owner := codeOwners()
	var out []Diagnostic
	for _, a := range allows {
		diag := func(code Code, sev Severity, msg string) {
			out = append(out, Diagnostic{
				Severity: sev, Code: code, Message: msg,
				File: a.file, Line: a.line, Col: a.col,
			})
		}
		if len(a.codes) == 0 {
			diag(CodeBadAllow, Error, "provmark:allow directive lists no codes")
			continue
		}
		bad := false
		allOwnersEnabled := true
		for _, c := range a.codes {
			if !known[c] {
				diag(CodeBadAllow, Error, "provmark:allow names unknown code "+string(c))
				bad = true
				continue
			}
			if name, ok := owner[c]; ok && !enabled[name] {
				allOwnersEnabled = false
			}
		}
		if !bad && !a.used && allOwnersEnabled {
			diag(CodeUnusedAllow, Warning, "provmark:allow suppresses nothing (codes "+joinCodes(a.codes)+")")
		}
	}
	return out
}

// codeOwners maps each analyzer code to its analyzer name. Framework
// codes have no owner and are always considered enabled.
func codeOwners() map[Code]string {
	m := map[Code]string{}
	for _, a := range All() {
		for _, c := range a.Codes {
			m[c.Code] = a.Name
		}
	}
	return m
}

func joinCodes(codes []Code) string {
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = string(c)
	}
	return strings.Join(parts, ", ")
}
