package analysis

import (
	"go/ast"
	"go/types"
)

// Codes of the poolsafety analyzer.
const (
	// CodePoolType: a sync.Pool's Get assertion or Put argument
	// disagrees with the type its New func constructs.
	CodePoolType Code = "pool-type"
	// CodePoolAlias: Put of a subslice expression — the pooled value
	// aliases a backing array the caller still holds.
	CodePoolAlias Code = "pool-alias"
)

// PoolSafety checks sync.Pool discipline around workspace pools like
// PR 9's WL-refinement wlPool: every pool's New func fixes the pooled
// type, so a Get asserted to a different type is a guaranteed runtime
// panic and a Put of a different type poisons the pool for every
// other Get site. Put of a subslice (p.Put(buf[:n])) is flagged
// separately: the pooled value shares its backing array with a slice
// the caller may retain, so a future Get hands out memory someone
// else is still writing.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc:  "sync.Pool Get/Put type mismatches and aliased-slice Puts",
	Codes: []CodeInfo{
		{CodePoolType, Error, "sync.Pool Get assertion or Put argument disagrees with the pool's New type"},
		{CodePoolAlias, Warning, "sync.Pool Put of a subslice aliases a retained backing array"},
	},
	Run: runPoolSafety,
}

func runPoolSafety(p *Pass) {
	pools := collectPools(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.TypeAssertExpr:
				checkGetAssert(p, pools, node)
			case *ast.CallExpr:
				checkPut(p, pools, node)
			}
			return true
		})
	}
}

// collectPools maps every sync.Pool variable or field initialized in
// this package to the type its New func returns. Pools whose New is
// absent or opaque map to nil (alias checks still apply; type checks
// do not).
func collectPools(p *Pass) map[types.Object]types.Type {
	pools := map[types.Object]types.Type{}
	record := func(obj types.Object, lit *ast.CompositeLit) {
		if obj == nil {
			return
		}
		if _, seen := pools[obj]; !seen {
			pools[obj] = poolNewType(p, lit)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ValueSpec:
				for i, v := range node.Values {
					if lit := asPoolLit(p, v); lit != nil && i < len(node.Names) {
						record(p.ObjectOf(node.Names[i]), lit)
					}
				}
			case *ast.AssignStmt:
				for i, v := range node.Rhs {
					lit := asPoolLit(p, v)
					if lit == nil || i >= len(node.Lhs) {
						continue
					}
					if id, ok := node.Lhs[i].(*ast.Ident); ok {
						record(p.ObjectOf(id), lit)
					}
				}
			case *ast.CompositeLit:
				// Struct literals with a sync.Pool field: c{pool: sync.Pool{...}}.
				for _, elt := range node.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if lit := asPoolLit(p, kv.Value); lit != nil {
						if key, ok := kv.Key.(*ast.Ident); ok {
							record(p.ObjectOf(key), lit)
						}
					}
				}
			}
			return true
		})
	}
	return pools
}

// asPoolLit unwraps v to a sync.Pool composite literal, or nil.
func asPoolLit(p *Pass, v ast.Expr) *ast.CompositeLit {
	if un, ok := v.(*ast.UnaryExpr); ok {
		v = un.X
	}
	lit, ok := v.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	t := p.TypeOf(lit)
	if t == nil || t.String() != "sync.Pool" {
		return nil
	}
	return lit
}

// poolNewType extracts the concrete type the pool's New func returns.
func poolNewType(p *Pass, lit *ast.CompositeLit) types.Type {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "New" {
			continue
		}
		fn, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			return nil
		}
		var newType types.Type
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			if t := p.TypeOf(ret.Results[0]); t != nil && !types.IsInterface(t) {
				newType = t
			}
			return true
		})
		return newType
	}
	return nil
}

// poolReceiver resolves the receiver of a .Get/.Put selector to a
// tracked pool object: a plain ident (package var) or the rightmost
// field of a selector chain (struct-held pool).
func poolReceiver(p *Pass, pools map[types.Object]types.Type, recv ast.Expr) (types.Object, bool) {
	var obj types.Object
	switch node := recv.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(node)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(node.Sel)
	default:
		return nil, false
	}
	if obj == nil {
		return nil, false
	}
	_, tracked := pools[obj]
	return obj, tracked
}

// checkGetAssert validates pool.Get().(T) against the pool's New
// type.
func checkGetAssert(p *Pass, pools map[types.Object]types.Type, ta *ast.TypeAssertExpr) {
	call, ok := ta.X.(*ast.CallExpr)
	if !ok || ta.Type == nil {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return
	}
	obj, tracked := poolReceiver(p, pools, sel.X)
	if !tracked || pools[obj] == nil {
		return
	}
	want := pools[obj]
	got := p.TypeOf(ta.Type)
	if got == nil || types.Identical(got, want) {
		return
	}
	p.Reportf(ta.Pos(), CodePoolType,
		"pool Get asserted to %s but New constructs %s — this assertion panics at runtime", got, want)
}

// checkPut validates pool.Put(x): x's type must match New's, and x
// must not be a subslice expression.
func checkPut(p *Pass, pools map[types.Object]types.Type, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return
	}
	obj, tracked := poolReceiver(p, pools, sel.X)
	if !tracked {
		return
	}
	arg := call.Args[0]
	if slice, ok := arg.(*ast.SliceExpr); ok {
		p.Reportf(slice.Pos(), CodePoolAlias,
			"pool Put of a subslice: the pooled value aliases a backing array the caller may still hold")
	}
	want := pools[obj]
	if want == nil {
		return
	}
	got := p.TypeOf(arg)
	if got == nil || types.Identical(got, want) {
		return
	}
	// Untyped nil and interface conversions are not mismatches.
	if basic, ok := got.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	p.Reportf(arg.Pos(), CodePoolType,
		"pool Put of %s but New constructs %s — mixed types poison every Get site", got, want)
}
