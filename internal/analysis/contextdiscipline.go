package analysis

import (
	"go/ast"
	"go/types"
)

// Codes of the contextdiscipline analyzer.
const (
	// CodeCtxNotFirst: a function takes context.Context anywhere but
	// first.
	CodeCtxNotFirst Code = "ctx-not-first"
	// CodeCtxBackground: context.Background()/TODO() outside package
	// main (tests are never loaded). Library code must thread the
	// caller's context so cancellation reaches every request path.
	CodeCtxBackground Code = "ctx-background"
	// CodeCtxInStruct: a struct field stores a context.Context,
	// detaching it from call-scoped cancellation.
	CodeCtxInStruct Code = "ctx-in-struct"
)

// ContextDiscipline enforces the PR 1 context-first API contract
// statically: contexts are the first parameter, never stored in
// structs, and never minted from context.Background()/TODO() outside
// package main — a request path that invents its own root context is
// a request that cannot be canceled.
var ContextDiscipline = &Analyzer{
	Name: "contextdiscipline",
	Doc:  "context-first parameters, no Background()/TODO() outside main, no ctx struct fields",
	Codes: []CodeInfo{
		{CodeCtxNotFirst, Error, "context.Context parameter is not the first parameter"},
		{CodeCtxBackground, Warning, "context.Background()/TODO() called outside package main"},
		{CodeCtxInStruct, Warning, "context.Context stored in a struct field"},
	},
	Run: runContextDiscipline,
}

func runContextDiscipline(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkCtxFirst(p, node.Type)
			case *ast.FuncLit:
				checkCtxFirst(p, node.Type)
			case *ast.StructType:
				for _, field := range node.Fields.List {
					if isContextType(p.TypeOf(field.Type)) {
						p.Reportf(field.Pos(), CodeCtxInStruct,
							"struct field stores a context.Context; pass it per call instead")
					}
				}
			case *ast.CallExpr:
				if p.PkgName == "main" {
					return true
				}
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && isContextPkg(p, id) {
					p.Reportf(node.Pos(), CodeCtxBackground,
						"context.%s() in library code; accept a context.Context from the caller", sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// checkCtxFirst reports context.Context parameters that are not the
// function's first parameter. Variadic and multi-name fields count by
// their leftmost name.
func checkCtxFirst(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(p.TypeOf(field.Type)) && pos > 0 {
			p.Reportf(field.Pos(), CodeCtxNotFirst,
				"context.Context must be the first parameter (found at position %d)", pos+1)
		}
		pos += width
	}
}

// isContextType matches context.Context (the interface itself, not
// implementations).
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// isContextPkg reports whether id names the imported context package.
func isContextPkg(p *Pass, id *ast.Ident) bool {
	obj := p.ObjectOf(id)
	pkgName, ok := obj.(*types.PkgName)
	return ok && pkgName.Imported().Path() == "context"
}
