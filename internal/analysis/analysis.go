// Package analysis is the repo's static-analysis framework for Go
// source: a dependency-free multichecker (go/ast + go/types + the
// source importer only, same hermetic-build constraint internal/lint
// honored) that proves project invariants at vet time which PRs 1–9
// could only enforce at runtime or by differential tests.
//
// The framework mirrors the shape of internal/datalog/analyze: every
// finding is a positioned, structured Diagnostic with a Code from a
// closed catalogue, severities are fixed per code, and the NDJSON
// report (schema provmark/vet-report/v1, shared framing in
// analysis/report) carries the same header/diagnostic/summary framing
// as provmark-dlint.
//
// Analyzers are package-local passes over type-checked syntax. The
// project suite (All) checks:
//
//   - determinism: map iteration feeding order-sensitive output in
//     determinism-critical packages (wire, datalog, graph, jobs)
//   - contextdiscipline: context.Context first-parameter placement,
//     no context.Background()/TODO() outside main, no ctx in structs
//   - mworder: httpmw.NewChain call sites validated against the
//     middleware class order at vet time, not startup
//   - goroutineleak: go closures with no visible lifecycle handle
//   - poolsafety: sync.Pool Get/Put type mismatches and aliased-slice
//     Puts
//   - credlog: credential-named identifiers reaching log calls
//     (migrated from the retired internal/lint package)
//
// Deliberate exceptions are annotated in source with a checked
// directive:
//
//	//provmark:allow <code>... [-- reason]
//
// which suppresses findings of those codes on the directive's line
// and the line below it. Directives are themselves verified: unknown
// codes are bad-allow errors and directives that suppress nothing are
// unused-allow warnings, so stale annotations cannot accumulate.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Warning marks a suspicious construct that may be legitimate;
	// CI promotes warnings to failures with -Werror.
	Warning Severity = iota
	// Error marks a definite invariant violation.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name, the stable wire form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names MarshalJSON emits.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("analysis: unknown severity %q", name)
	}
	return nil
}

// Code identifies a diagnostic class. Every analyzer declares its
// codes up front; the union (plus the framework's own codes) is the
// closed set the //provmark:allow directive validates against.
type Code string

// Framework-owned codes, reported by the loader and the directive
// checker rather than by any one analyzer.
const (
	// CodeLoadError: a package failed to parse or type-check; the
	// diagnostic carries the compiler error. Analyzers still run over
	// whatever syntax survived, with partial type information.
	CodeLoadError Code = "load-error"
	// CodeBadAllow: a //provmark:allow directive names a code no
	// registered analyzer (or the framework) owns.
	CodeBadAllow Code = "bad-allow"
	// CodeUnusedAllow: a //provmark:allow directive suppressed
	// nothing — the exception it documents no longer exists.
	CodeUnusedAllow Code = "unused-allow"
)

// CodeInfo documents one diagnostic class: its fixed severity and a
// one-line summary (the source of the README catalogue table).
type CodeInfo struct {
	Code     Code
	Severity Severity
	Summary  string
}

// FrameworkCodes lists the codes the framework itself can emit.
func FrameworkCodes() []CodeInfo {
	return []CodeInfo{
		{CodeLoadError, Error, "package failed to parse or type-check (analysis continues on partial syntax)"},
		{CodeBadAllow, Error, "//provmark:allow directive names an unknown diagnostic code"},
		{CodeUnusedAllow, Warning, "//provmark:allow directive suppresses nothing (stale exception)"},
	}
}

// Diagnostic is one positioned finding over Go source.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Code     Code     `json:"code"`
	Message  string   `json:"message"`
	// File is the path as loaded (relative to the vet root). In the
	// NDJSON report it travels as the shared framing's "file" field,
	// not inside the diagnostic payload.
	File string `json:"-"`
	// Line and Col are 1-based; zero means file-level.
	Line int `json:"line"`
	Col  int `json:"col"`
}

// Human renders the diagnostic in the conventional compiler shape:
// "file:line:col: severity: message [code]".
func (d Diagnostic) Human() string {
	pos := d.File
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Code)
}

// Render joins the human form of every diagnostic, one per line.
func Render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.Human())
		b.WriteByte('\n')
	}
	return b.String()
}

// Count tallies diagnostics by severity.
func Count(diags []Diagnostic) (errors, warnings int) {
	for _, d := range diags {
		if d.Severity == Error {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier — the CLI's per-analyzer
	// enable flag and the catalogue key.
	Name string
	// Doc is the one-line description shown in flag help.
	Doc string
	// Codes is the closed set of diagnostic classes the analyzer can
	// emit, with fixed severities.
	Codes []CodeInfo
	// Run inspects one package and reports through the pass.
	Run func(*Pass)
}

// severityOf resolves a code's fixed severity from the declaration.
func (a *Analyzer) severityOf(code Code) Severity {
	for _, c := range a.Codes {
		if c.Code == code {
			return c.Severity
		}
	}
	panic(fmt.Sprintf("analysis: analyzer %s reported undeclared code %q", a.Name, code))
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Path is the package's import path ("provmark/internal/wire").
	Path string
	// PkgName is the declared package name ("main" gates several
	// checks).
	PkgName string
	// Pkg is the type-checked package; may be partially complete when
	// the package had load errors.
	Pkg *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, code Code, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Severity: p.Analyzer.severityOf(code),
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// TypeOf returns the type of an expression, or nil when the checker
// recorded none (load errors leave holes analyzers must tolerate).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// All returns the project analyzer suite in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ContextDiscipline,
		MWOrder,
		GoroutineLeak,
		PoolSafety,
		CredLog,
	}
}

// ByName resolves analyzers from All by name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// knownCodes is the directive-validation set: every analyzer code
// plus the framework's own.
func knownCodes() map[Code]bool {
	m := map[Code]bool{}
	for _, a := range All() {
		for _, c := range a.Codes {
			m[c.Code] = true
		}
	}
	for _, c := range FrameworkCodes() {
		m[c.Code] = true
	}
	return m
}

// Run executes the analyzers over every loaded package: load errors
// first, then analyzer findings filtered through //provmark:allow
// directives, then directive hygiene (bad-allow, unused-allow).
// Diagnostics come back position-sorted.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	for _, pkg := range pkgs {
		out = append(out, pkg.Errs...)
		allows := collectAllows(pkg.Fset, pkg.Files)
		var found []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				PkgName:  pkg.Name,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &found,
			}
			a.Run(pass)
		}
		out = append(out, filterAllowed(found, allows)...)
		out = append(out, checkAllows(allows, enabled)...)
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders by file, line, column, then code for stable
// output.
func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}
