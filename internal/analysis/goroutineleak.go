package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CodeGoroutineLeak flags a go closure with no visible lifecycle
// handle.
const CodeGoroutineLeak Code = "goroutine-leak"

// GoroutineLeak flags `go func() { ... }()` statements in non-main
// code whose closure touches no lifecycle handle: no context, no
// channel, no WaitGroup, no pool/group object. Such a goroutine has
// no way to learn its owner is gone — the shape behind every leaked
// watcher the stream-disconnect barriers in PRs 3 and 6 exist to
// catch. Library goroutines must be joinable or cancelable; package
// main may spawn fire-and-forget workers because process exit reaps
// them, and named-function goroutines are judged by their arguments'
// receivers at the callee, not here.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "go closures in library code with no ctx/channel/WaitGroup/pool handle",
	Codes: []CodeInfo{
		{CodeGoroutineLeak, Warning, "go closure captures no lifecycle handle (ctx, channel, WaitGroup, pool)"},
	},
	Run: runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	if p.PkgName == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if closureHasLifecycle(p, lit, gs.Call.Args) {
				return true
			}
			p.Reportf(gs.Pos(), CodeGoroutineLeak,
				"go closure has no lifecycle handle (no ctx, channel, WaitGroup, or pool) — its owner cannot stop or join it")
			return true
		})
	}
}

// closureHasLifecycle scans the closure body and its call arguments
// for any expression whose type is a lifecycle handle.
func closureHasLifecycle(p *Pass, lit *ast.FuncLit, args []ast.Expr) bool {
	found := false
	scan := func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isLifecycleType(p.TypeOf(e)) {
			found = true
			return false
		}
		return true
	}
	ast.Inspect(lit.Body, scan)
	for _, a := range args {
		if found {
			break
		}
		ast.Inspect(a, scan)
	}
	return found
}

// isLifecycleType recognizes the handles that bound a goroutine's
// life: contexts, channels (select/receive/close), sync.WaitGroup,
// and named pool/group types (sync.Pool, errgroup-style groups,
// worker pools).
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "context.Context" {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "pool") || strings.Contains(name, "group")
}
