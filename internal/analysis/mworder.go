package analysis

import (
	"go/ast"
	"go/constant"

	"provmark/internal/httpmw"
)

// CodeMWOrder flags a NewChain/MustNewChain call site whose layers
// violate the middleware class order.
const CodeMWOrder Code = "mw-order"

// httpmwPath is the middleware package whose chain constructors the
// analyzer validates.
const httpmwPath = "provmark/internal/httpmw"

// layerClasses maps httpmw's layer-constructor names to their classes
// — the same order NewChain enforces at startup
// (Recover < RequestID < AccessLog < Metrics < Auth < RateLimit <
// Quota < BodyLimit). Sourcing the values from httpmw itself keeps
// the analyzer honest when classes move.
var layerClasses = map[string]httpmw.Class{
	"RecoverLayer":   httpmw.ClassRecover,
	"RequestIDLayer": httpmw.ClassRequestID,
	"AccessLogLayer": httpmw.ClassAccessLog,
	"MetricsLayer":   httpmw.ClassMetrics,
	"AuthLayer":      httpmw.ClassAuth,
	"RateLimitLayer": httpmw.ClassRateLimit,
	"QuotaLayer":     httpmw.ClassQuota,
	"BodyLimitLayer": httpmw.ClassBodyLimit,
}

// MWOrder validates every httpmw.NewChain / MustNewChain call site
// against the middleware class order at vet time, turning PR 6's
// startup error into a compile-time diagnostic. Layers passed
// directly are classified by constructor name or by a Layer composite
// literal's Class field; a `layers...` spread is traced through the
// slice variable's literal elements and in-function appends — the
// conditional-append wiring jobs.NewServer uses — in source order.
// Elements the analyzer cannot classify are transparent, so helper
// constructors never cause false positives.
var MWOrder = &Analyzer{
	Name: "mworder",
	Doc:  "httpmw.NewChain call sites validated against the middleware class order",
	Codes: []CodeInfo{
		{CodeMWOrder, Error, "middleware layers registered out of class order (or a class registered twice)"},
	},
	Run: runMWOrder,
}

// layerRef is one classified chain element.
type layerRef struct {
	name  string // constructor or class name as written
	class httpmw.Class
	pos   ast.Node
}

func runMWOrder(p *Pass) {
	for _, f := range p.Files {
		// enclosing tracks the function whose body a call appears in,
		// for tracing `layers...` spread variables.
		var enclosing []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				enclosing = enclosing[:len(enclosing)-1]
				return true
			}
			enclosing = append(enclosing, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isChainCall(p, call) {
				return true
			}
			refs := chainElements(p, call, enclosing)
			checkLayerOrder(p, refs)
			return true
		}
		ast.Inspect(f, walk)
	}
}

// isChainCall matches httpmw.NewChain and httpmw.MustNewChain.
func isChainCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "NewChain" && sel.Sel.Name != "MustNewChain") {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == httpmwPath
}

// chainElements resolves a chain call's arguments to classified
// layers, expanding a trailing `slice...` through local assignments.
func chainElements(p *Pass, call *ast.CallExpr, enclosing []ast.Node) []layerRef {
	if call.Ellipsis.IsValid() && len(call.Args) == 1 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			return traceLayerSlice(p, id, enclosingFunc(enclosing))
		}
		return nil
	}
	var refs []layerRef
	for _, arg := range call.Args {
		if ref, ok := classifyLayer(p, arg); ok {
			refs = append(refs, ref)
		}
	}
	return refs
}

// enclosingFunc finds the innermost function body on the walk stack.
func enclosingFunc(enclosing []ast.Node) *ast.BlockStmt {
	for i := len(enclosing) - 1; i >= 0; i-- {
		switch fn := enclosing[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// traceLayerSlice reconstructs the registration order of a
// []httpmw.Layer variable: its declaration literal's elements, then
// every `x = append(x, ...)` in the same function, in source order.
// Any other write to the variable makes the trace unreliable, so the
// call site is skipped rather than guessed at.
func traceLayerSlice(p *Pass, id *ast.Ident, body *ast.BlockStmt) []layerRef {
	obj := p.ObjectOf(id)
	if obj == nil || body == nil {
		return nil
	}
	var refs []layerRef
	reliable := true
	addElems := func(elems []ast.Expr) {
		for _, e := range elems {
			if ref, ok := classifyLayer(p, e); ok {
				refs = append(refs, ref)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || p.ObjectOf(lid) != obj || i >= len(assign.Rhs) {
				continue
			}
			switch rhs := assign.Rhs[i].(type) {
			case *ast.CompositeLit:
				addElems(rhs.Elts)
			case *ast.CallExpr:
				if isBuiltinAppend(p, rhs) && len(rhs.Args) > 0 {
					if base, ok := rhs.Args[0].(*ast.Ident); ok && p.ObjectOf(base) == obj {
						addElems(rhs.Args[1:])
						continue
					}
				}
				reliable = false
			default:
				reliable = false
			}
		}
		return true
	})
	if !reliable {
		return nil
	}
	return refs
}

// classifyLayer resolves one chain element to its class: a
// constructor call (httpmw.RecoverLayer(...)) or a Layer composite
// literal with a constant Class field. Unclassifiable elements are
// transparent.
func classifyLayer(p *Pass, e ast.Expr) (layerRef, bool) {
	switch node := e.(type) {
	case *ast.CallExpr:
		sel, ok := node.Fun.(*ast.SelectorExpr)
		if !ok {
			return layerRef{}, false
		}
		obj := p.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != httpmwPath {
			return layerRef{}, false
		}
		class, ok := layerClasses[sel.Sel.Name]
		if !ok {
			return layerRef{}, false
		}
		return layerRef{name: sel.Sel.Name, class: class, pos: node}, true
	case *ast.CompositeLit:
		t := p.TypeOf(node)
		if t == nil || t.String() != httpmwPath+".Layer" {
			return layerRef{}, false
		}
		for _, elt := range node.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Class" {
				continue
			}
			if tv, ok := p.Info.Types[kv.Value]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(tv.Value); ok {
					class := httpmw.Class(v)
					return layerRef{name: "Layer{Class: " + class.String() + "}", class: class, pos: node}, true
				}
			}
		}
	}
	return layerRef{}, false
}

// checkLayerOrder enforces strictly ascending classes over the
// classified elements.
func checkLayerOrder(p *Pass, refs []layerRef) {
	for i := 1; i < len(refs); i++ {
		prev, cur := refs[i-1], refs[i]
		switch {
		case cur.class == prev.class:
			p.Reportf(cur.pos.Pos(), CodeMWOrder,
				"%s and %s both register middleware class %s", prev.name, cur.name, cur.class)
		case cur.class < prev.class:
			p.Reportf(cur.pos.Pos(), CodeMWOrder,
				"%s (%s) registered after %s (%s); required order is %s",
				cur.name, cur.class, prev.name, prev.class, classOrder())
		}
	}
}

// classOrder renders the full contract for diagnostics.
func classOrder() string {
	s := ""
	for c := httpmw.ClassRecover; c <= httpmw.ClassBodyLimit; c++ {
		if c > 0 {
			s += " < "
		}
		s += c.String()
	}
	return s
}
