package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// payload mimics a tool diagnostic: severity plus tool-specific
// fields whose order must survive the round trip.
type payload struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Message  string `json:"message"`
	Line     int    `json:"line"`
}

func TestWriteReadEncodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "provmark/test-report/v1", 2)
	if err != nil {
		t.Fatal(err)
	}
	diags := []payload{
		{Severity: "error", Code: "boom", Message: "first", Line: 3},
		{Severity: "warning", Code: "meh", Message: "second", Line: 9},
	}
	for _, d := range diags {
		if err := w.Diagnostic("a.go", d); err != nil {
			t.Fatal(err)
		}
	}
	if errs, warns := w.Totals(); errs != 1 || warns != 1 {
		t.Errorf("Totals = %d/%d", errs, warns)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "provmark/test-report/v1" || rep.Files != 2 {
		t.Errorf("header = %q/%d", rep.Schema, rep.Files)
	}
	if rep.Errors != 1 || rep.Warnings != 1 || len(rep.Records) != 2 {
		t.Errorf("decoded = %d errors, %d warnings, %d records", rep.Errors, rep.Warnings, len(rep.Records))
	}
	// Tool-specific fields re-decode from the raw record.
	var back payload
	if err := json.Unmarshal(rep.Records[0].Raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != diags[0] || rep.Records[0].File != "a.go" {
		t.Errorf("record 0 = %+v (file %q)", back, rep.Records[0].File)
	}

	// Encode must reproduce the stream byte-identically.
	var out bytes.Buffer
	if err := rep.Encode(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), buf.Bytes()) {
		t.Errorf("Encode not byte-identical:\ngot:\n%s\nwant:\n%s", out.String(), buf.String())
	}
}

func TestWriterRejectsBadPayloads(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Diagnostic("a.go", []int{1}); err == nil {
		t.Error("non-object payload accepted")
	}
	if err := w.Diagnostic("a.go", payload{Severity: "fatal"}); err == nil {
		t.Error("bad severity accepted")
	}
	if err := w.Diagnostic("a.go", struct{}{}); err == nil {
		t.Error("payload without severity accepted")
	}
}

func TestReadRejectsMalformedStreams(t *testing.T) {
	header := `{"schema":"s","kind":"header","files":1}`
	diag := `{"kind":"diagnostic","file":"a.go","severity":"error"}`
	cases := map[string]string{
		"diagnostic before header": diag,
		"duplicate header":         header + "\n" + header,
		"missing schema":           `{"schema":"","kind":"header","files":1}`,
		"bad severity":             header + "\n" + `{"kind":"diagnostic","file":"a.go","severity":"fatal"}`,
		"unknown kind":             header + "\n" + `{"kind":"mystery"}`,
		"summary count lies":       header + "\n" + diag + "\n" + `{"kind":"summary","files":1,"errors":0,"warnings":0}`,
		"summary files lies":       header + "\n" + `{"kind":"summary","files":7,"errors":0,"warnings":0}`,
		"record after summary":     header + "\n" + `{"kind":"summary","files":1,"errors":0,"warnings":0}` + "\n" + diag,
		"truncated (no summary)":   header + "\n" + diag,
		"empty stream":             "",
		"not json":                 "nope",
	}
	for name, stream := range cases {
		if _, err := Read(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
