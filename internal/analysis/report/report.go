// Package report is the one NDJSON framing shared by the repo's
// diagnostic tools (provmark-dlint, provmark-vet). A report stream is
//
//	{"schema":"provmark/<tool>-report/v1","kind":"header","files":N}
//	{"kind":"diagnostic","file":"...", ...tool-specific fields...}
//	...
//	{"kind":"summary","files":N,"errors":E,"warnings":W}
//
// The schemas stay versioned per tool — only the framing and the
// file/severity conventions are shared. Every diagnostic record must
// carry a "severity" of "error" or "warning"; the Writer tallies them
// so the summary can never disagree with the records, and Read
// re-verifies the same invariant on decode.
package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Writer emits one report stream. Diagnostic payloads keep their
// tool-specific shape; the writer contributes the framing fields.
type Writer struct {
	out      io.Writer
	enc      *json.Encoder
	files    int
	errors   int
	warnings int
}

// header is the first record of a stream.
type header struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	Files  int    `json:"files"`
}

// summary is the final record of a stream.
type summary struct {
	Kind     string `json:"kind"`
	Files    int    `json:"files"`
	Errors   int    `json:"errors"`
	Warnings int    `json:"warnings"`
}

// NewWriter starts a stream: the header record is written
// immediately. files is the input count the header advertises.
func NewWriter(out io.Writer, schema string, files int) (*Writer, error) {
	w := &Writer{out: out, enc: json.NewEncoder(out), files: files}
	if err := w.enc.Encode(header{Schema: schema, Kind: "header", Files: files}); err != nil {
		return nil, err
	}
	return w, nil
}

// Diagnostic writes one diagnostic record: the framing fields
// (kind, file) spliced ahead of diag's own JSON object. diag must
// marshal to an object carrying "severity":"error"|"warning".
func (w *Writer) Diagnostic(file string, diag any) error {
	body, err := json.Marshal(diag)
	if err != nil {
		return err
	}
	if len(body) < 2 || body[0] != '{' || body[len(body)-1] != '}' {
		return fmt.Errorf("report: diagnostic must marshal to a JSON object, got %s", body)
	}
	var sev struct {
		Severity string `json:"severity"`
	}
	if err := json.Unmarshal(body, &sev); err != nil {
		return err
	}
	switch sev.Severity {
	case "error":
		w.errors++
	case "warning":
		w.warnings++
	default:
		return fmt.Errorf("report: diagnostic severity must be error or warning, got %q", sev.Severity)
	}
	fileJSON, err := json.Marshal(file)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(`{"kind":"diagnostic","file":`)
	buf.Write(fileJSON)
	if len(body) > 2 {
		buf.WriteByte(',')
		buf.Write(body[1 : len(body)-1])
	}
	buf.WriteString("}\n")
	_, err = w.out.Write(buf.Bytes())
	return err
}

// Totals returns the severity tallies so far.
func (w *Writer) Totals() (errors, warnings int) {
	return w.errors, w.warnings
}

// Close ends the stream with the summary record.
func (w *Writer) Close() error {
	return w.enc.Encode(summary{Kind: "summary", Files: w.files, Errors: w.errors, Warnings: w.warnings})
}

// Record is one decoded diagnostic line: the framing file field plus
// the verbatim record for tool-specific re-decoding.
type Record struct {
	File string
	Raw  json.RawMessage
}

// Report is a fully decoded stream.
type Report struct {
	Schema   string
	Files    int
	Records  []Record
	Errors   int
	Warnings int
}

// Read decodes and validates one stream: header first, diagnostics
// (each with a file and a legal severity), and a summary whose
// tallies must match the records — a report that lies about its own
// counts is rejected.
func Read(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{}
	sawHeader, sawSummary := false, false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			return nil, fmt.Errorf("report: record after summary: %s", line)
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("report: bad record %s: %w", line, err)
		}
		switch kind.Kind {
		case "header":
			if sawHeader {
				return nil, fmt.Errorf("report: duplicate header")
			}
			var h header
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, err
			}
			if h.Schema == "" {
				return nil, fmt.Errorf("report: header lacks a schema")
			}
			rep.Schema, rep.Files = h.Schema, h.Files
			sawHeader = true
		case "diagnostic":
			if !sawHeader {
				return nil, fmt.Errorf("report: diagnostic before header")
			}
			var d struct {
				File     string `json:"file"`
				Severity string `json:"severity"`
			}
			if err := json.Unmarshal(line, &d); err != nil {
				return nil, err
			}
			switch d.Severity {
			case "error":
				rep.Errors++
			case "warning":
				rep.Warnings++
			default:
				return nil, fmt.Errorf("report: diagnostic severity must be error or warning, got %q", d.Severity)
			}
			rep.Records = append(rep.Records, Record{File: d.File, Raw: append(json.RawMessage(nil), line...)})
		case "summary":
			if !sawHeader {
				return nil, fmt.Errorf("report: summary before header")
			}
			var s summary
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, err
			}
			if s.Errors != rep.Errors || s.Warnings != rep.Warnings {
				return nil, fmt.Errorf("report: summary counts %d/%d disagree with records %d/%d",
					s.Errors, s.Warnings, rep.Errors, rep.Warnings)
			}
			if s.Files != rep.Files {
				return nil, fmt.Errorf("report: summary files %d disagrees with header %d", s.Files, rep.Files)
			}
			sawSummary = true
		default:
			return nil, fmt.Errorf("report: unknown record kind %q", kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader || !sawSummary {
		return nil, fmt.Errorf("report: truncated stream (header %v, summary %v)", sawHeader, sawSummary)
	}
	return rep, nil
}

// Encode re-emits a decoded report byte-identically: the raw
// diagnostic lines verbatim between a regenerated header and summary.
func (rep *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(header{Schema: rep.Schema, Kind: "header", Files: rep.Files}); err != nil {
		return err
	}
	for _, rec := range rep.Records {
		if _, err := w.Write(append(rec.Raw, '\n')); err != nil {
			return err
		}
	}
	return enc.Encode(summary{Kind: "summary", Files: rep.Files, Errors: rep.Errors, Warnings: rep.Warnings})
}
