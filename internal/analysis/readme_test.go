package analysis_test

// The README's "Static analysis" section carries the analyzer
// catalogue between <!-- vet-catalogue:begin/end --> markers. This
// drift guard regenerates the table from the live analyzer
// declarations and fails when the document and the suite disagree —
// the same pattern the dlint catalogue uses.

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"provmark/internal/analysis"
)

func catalogueMarkdown() string {
	var b strings.Builder
	b.WriteString("| analyzer | code | severity | meaning |\n|---|---|---|---|\n")
	for _, a := range analysis.All() {
		for _, c := range a.Codes {
			fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n", a.Name, c.Code, c.Severity, c.Summary)
		}
	}
	for _, c := range analysis.FrameworkCodes() {
		fmt.Fprintf(&b, "| (framework) | `%s` | %s | %s |\n", c.Code, c.Severity, c.Summary)
	}
	return b.String()
}

func TestReadmeVetCatalogue(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- vet-catalogue:begin -->", "<!-- vet-catalogue:end -->"
	doc := string(data)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s/%s markers", begin, end)
	}
	got := strings.TrimSpace(doc[i+len(begin) : j])
	want := strings.TrimSpace(catalogueMarkdown())
	if got != want {
		t.Errorf("README vet catalogue drifted from the analyzer declarations.\n--- README ---\n%s\n--- suite ---\n%s", got, want)
	}
}
