package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runFixture loads one testdata/src subtree and runs the given
// analyzers over it.
func runFixture(t *testing.T, dir string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkgs, err := Load(".", []string{"./testdata/src/" + dir + "/..."})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", dir)
	}
	return Run(pkgs, analyzers)
}

// checkGolden compares rendered diagnostics against the named golden
// file; -update rewrites it.
func checkGolden(t *testing.T, name string, diags []Diagnostic) {
	t.Helper()
	got := Render(diags)
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestDeterminismGolden(t *testing.T) {
	diags := runFixture(t, "determinism", Determinism)
	checkGolden(t, "determinism", diags)
	for _, d := range diags {
		if strings.Contains(d.File, "plain") {
			t.Errorf("non-critical package flagged: %s", d.Human())
		}
		if d.Code != CodeMapOrder {
			t.Errorf("unexpected code: %s", d.Human())
		}
	}
	if len(diags) != 2 {
		t.Errorf("want exactly the 2 wire findings (allow suppresses the third), got %d", len(diags))
	}
}

func TestContextDisciplineGolden(t *testing.T) {
	diags := runFixture(t, "contextdiscipline", ContextDiscipline)
	checkGolden(t, "contextdiscipline", diags)
	codes := map[Code]int{}
	for _, d := range diags {
		codes[d.Code]++
	}
	if codes[CodeCtxNotFirst] != 1 || codes[CodeCtxInStruct] != 1 || codes[CodeCtxBackground] != 1 {
		t.Errorf("code tally = %v, want one of each (allow suppresses the second Background)", codes)
	}
}

func TestMWOrderGolden(t *testing.T) {
	diags := runFixture(t, "mworder", MWOrder)
	checkGolden(t, "mworder", diags)
	if len(diags) != 3 {
		t.Errorf("want 3 mw-order findings (direct, duplicate class, spread trace), got %d:\n%s", len(diags), Render(diags))
	}
	for _, d := range diags {
		if d.Code != CodeMWOrder || d.Severity != Error {
			t.Errorf("unexpected finding: %s", d.Human())
		}
	}
}

func TestGoroutineLeakGolden(t *testing.T) {
	diags := runFixture(t, "goroutineleak", GoroutineLeak)
	checkGolden(t, "goroutineleak", diags)
	if len(diags) != 1 {
		t.Errorf("want exactly the Fire finding, got %d:\n%s", len(diags), Render(diags))
	}
}

func TestPoolSafetyGolden(t *testing.T) {
	diags := runFixture(t, "poolsafety", PoolSafety)
	checkGolden(t, "poolsafety", diags)
	codes := map[Code]int{}
	for _, d := range diags {
		codes[d.Code]++
	}
	if codes[CodePoolType] != 2 || codes[CodePoolAlias] != 1 {
		t.Errorf("code tally = %v, want pool-type:2 pool-alias:1", codes)
	}
}

func TestCredLogGolden(t *testing.T) {
	diags := runFixture(t, "credlog", CredLog)
	checkGolden(t, "credlog", diags)
	if len(diags) != 1 || diags[0].Code != CodeCredLog {
		t.Errorf("want exactly the Leak finding, got:\n%s", Render(diags))
	}
}

func TestAllowHygieneGolden(t *testing.T) {
	diags := runFixture(t, "hygiene", All()...)
	checkGolden(t, "hygiene", diags)
	codes := map[Code]int{}
	for _, d := range diags {
		codes[d.Code]++
	}
	if codes[CodeBadAllow] != 2 || codes[CodeUnusedAllow] != 1 {
		t.Errorf("code tally = %v, want bad-allow:2 unused-allow:1", codes)
	}
}

// A stale directive whose owning analyzer is disabled must not be
// reported unused: with the analyzer off, nothing could have matched.
func TestUnusedAllowSkippedWhenOwnerDisabled(t *testing.T) {
	diags := runFixture(t, "hygiene", CredLog)
	for _, d := range diags {
		if d.Code == CodeUnusedAllow {
			t.Errorf("unused-allow with owner disabled: %s", d.Human())
		}
	}
	badAllows := 0
	for _, d := range diags {
		if d.Code == CodeBadAllow {
			badAllows++
		}
	}
	if badAllows != 2 {
		t.Errorf("bad-allow must fire regardless of analyzer set, got %d", badAllows)
	}
}
