package analysis

import (
	"strings"
	"testing"
)

// A fixture that fails to type-check must come back as a positioned
// load-error diagnostic — and running the full suite over the partial
// package must not panic.
func TestBrokenPackageDiagnosesNotPanics(t *testing.T) {
	pkgs, err := Load(".", []string{"./testdata/src/broken"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages = %d", len(pkgs))
	}
	diags := Run(pkgs, All())
	found := false
	for _, d := range diags {
		if d.Code != CodeLoadError {
			continue
		}
		found = true
		if d.Severity != Error {
			t.Errorf("load-error severity = %s", d.Severity)
		}
		if !strings.Contains(d.File, "broken.go") || d.Line == 0 {
			t.Errorf("load-error lacks a position: %s", d.Human())
		}
		if !strings.Contains(d.Message, "undefinedIdentifier") {
			t.Errorf("load-error message = %q", d.Message)
		}
	}
	if !found {
		t.Errorf("no load-error diagnostic:\n%s", Render(diags))
	}
}

func TestLoadMissingRootFails(t *testing.T) {
	if _, err := Load("no-such-root", []string{"./..."}); err == nil {
		t.Error("missing root accepted")
	}
	if _, err := Load(".", []string{"./no-such-dir"}); err == nil {
		t.Error("missing pattern dir accepted")
	}
}

// Recursive loads must skip testdata (fixtures would otherwise
// pollute repo scans) and never include _test.go files.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	pkgs, err := Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 2 { // this package and analysis/report at minimum
		t.Fatalf("packages = %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Dir, "testdata") {
			t.Errorf("testdata loaded: %s", pkg.Dir)
		}
		if !strings.HasPrefix(pkg.Path, "provmark/") {
			t.Errorf("module-derived import path missing: %q", pkg.Path)
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file loaded: %s", name)
			}
		}
	}
}
