package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers
// run over.
type Package struct {
	// Path is the import path, derived from the enclosing module.
	Path string
	// Name is the declared package name.
	Name string
	// Dir is the directory as resolved against the load root.
	Dir  string
	Fset *token.FileSet
	// Files is the parsed non-test syntax, comments included.
	Files []*ast.File
	// Types and Info are the type-checker's results; both survive (in
	// partial form) when the package has load errors.
	Types *types.Package
	Info  *types.Info
	// Errs carries parse and type-check failures as load-error
	// diagnostics — a broken fixture must diagnose, never panic.
	Errs []Diagnostic
}

// maxLoadErrs bounds the load-error diagnostics kept per package so
// one broken import does not flood the report.
const maxLoadErrs = 10

// Load expands go-style package patterns relative to root — "./..."
// recurses, a plain path names one directory — parses every non-test
// .go file, and type-checks each directory as one package through the
// stdlib source importer (no go/packages, no external deps; imports
// resolve from source, module-aware via go/build). testdata, vendor,
// and hidden trees are skipped on recursion. Parse and type errors
// become load-error diagnostics on the package, not hard failures;
// the returned error is reserved for unusable inputs (missing root,
// unmatched directory).
func Load(root string, patterns []string) ([]*Package, error) {
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One importer for the whole load: its package cache makes the
	// n-th package's stdlib imports free.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expandPatterns resolves patterns to a sorted directory list.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if _, err := os.Stat(root); err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, pat := range patterns {
		base, recurse := strings.CutSuffix(pat, "...")
		base = filepath.Join(root, strings.TrimSuffix(base, "/"))
		if !recurse {
			if _, err := os.Stat(base); err != nil {
				return nil, err
			}
			set[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			set[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks one directory; nil when it holds no
// non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			pkg.Errs = appendLoadErrs(fset, pkg.Errs, path, err)
		}
		if file != nil {
			pkg.Files = append(pkg.Files, file)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.Errs) == 0 {
		return nil, nil
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	pkg.Path = importPath(dir)
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.Errs = appendLoadErrs(fset, pkg.Errs, dir, err)
		},
	}
	// Check returns the partial package even on error; the Error hook
	// above already recorded the diagnostics.
	pkg.Types, _ = conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if len(pkg.Errs) > maxLoadErrs {
		pkg.Errs = pkg.Errs[:maxLoadErrs]
	}
	return pkg, nil
}

// appendLoadErrs converts parser and type-checker failures — both of
// which may bundle several positioned errors — into load-error
// diagnostics.
func appendLoadErrs(fset *token.FileSet, diags []Diagnostic, fallbackFile string, err error) []Diagnostic {
	add := func(file string, line, col int, msg string) {
		diags = append(diags, Diagnostic{
			Severity: Error,
			Code:     CodeLoadError,
			Message:  msg,
			File:     file,
			Line:     line,
			Col:      col,
		})
	}
	switch e := err.(type) {
	case types.Error:
		pos := e.Fset.Position(e.Pos)
		add(pos.Filename, pos.Line, pos.Column, e.Msg)
	default:
		// scanner.ErrorList and friends stringify with position
		// prefixes already; keep the message whole.
		add(fallbackFile, 0, 0, err.Error())
	}
	return diags
}

// importPath derives a package's import path by locating the
// enclosing module's go.mod. Directories outside any module fall back
// to their cleaned path, which keeps fixtures loadable.
func importPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(dir)
	}
	for probe := abs; ; {
		data, err := os.ReadFile(filepath.Join(probe, "go.mod"))
		if err == nil {
			if mod := modulePath(data); mod != "" {
				rel, err := filepath.Rel(probe, abs)
				if err == nil {
					if rel == "." {
						return mod
					}
					return mod + "/" + filepath.ToSlash(rel)
				}
			}
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			return filepath.ToSlash(dir)
		}
		probe = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
