package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{Warning, Error} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("%s round-tripped to %s", sev, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestDiagnosticHuman(t *testing.T) {
	d := Diagnostic{Severity: Error, Code: CodeLoadError, Message: "boom", File: "a/b.go", Line: 3, Col: 7}
	if got := d.Human(); got != "a/b.go:3:7: error: boom [load-error]" {
		t.Errorf("Human() = %q", got)
	}
	// Zero line means file-level: no position suffix.
	d.Line, d.Col = 0, 0
	if got := d.Human(); got != "a/b.go: error: boom [load-error]" {
		t.Errorf("file-level Human() = %q", got)
	}
}

func TestCountAndHasErrors(t *testing.T) {
	diags := []Diagnostic{{Severity: Error}, {Severity: Warning}, {Severity: Warning}}
	errs, warns := Count(diags)
	if errs != 1 || warns != 2 {
		t.Errorf("Count = %d/%d", errs, warns)
	}
	if !HasErrors(diags) {
		t.Error("HasErrors missed the error")
	}
	if HasErrors(diags[1:]) {
		t.Error("HasErrors on warnings only")
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown analyzer resolved")
	}
}

// Every code across the suite and the framework must be unique: the
// allow directive and the catalogue both key on codes.
func TestCodesAreUnique(t *testing.T) {
	seen := map[Code]string{}
	claim := func(owner string, infos []CodeInfo) {
		for _, c := range infos {
			if prev, dup := seen[c.Code]; dup {
				t.Errorf("code %s declared by both %s and %s", c.Code, prev, owner)
			}
			seen[c.Code] = owner
			if c.Summary == "" {
				t.Errorf("code %s (%s) lacks a summary", c.Code, owner)
			}
		}
	}
	claim("framework", FrameworkCodes())
	for _, a := range All() {
		claim(a.Name, a.Codes)
	}
}

func TestUndeclaredCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("severityOf accepted an undeclared code")
		}
	}()
	Determinism.severityOf(CodeCredLog)
}

// The directive must cover both the trailing-comment form (same line)
// and the own-line form (line below) but nothing further away.
func TestAllowCoverage(t *testing.T) {
	d := &allowDirective{file: "f.go", line: 10, codes: []Code{CodeMapOrder}}
	if !d.covers("f.go", 10, CodeMapOrder) || !d.covers("f.go", 11, CodeMapOrder) {
		t.Error("directive must cover its own line and the next")
	}
	if d.covers("f.go", 12, CodeMapOrder) || d.covers("g.go", 10, CodeMapOrder) {
		t.Error("directive covers too much")
	}
	if d.covers("f.go", 10, CodeCredLog) {
		t.Error("directive covers a code it does not list")
	}
}

func TestRenderOnePerLine(t *testing.T) {
	out := Render([]Diagnostic{
		{Severity: Warning, Code: CodeMapOrder, Message: "a", File: "x.go", Line: 1, Col: 1},
		{Severity: Error, Code: CodeCredLog, Message: "b", File: "y.go", Line: 2, Col: 2},
	})
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Render = %q", out)
	}
}
