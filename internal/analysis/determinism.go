package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CodeMapOrder flags map iteration feeding order-sensitive output in
// a determinism-critical package.
const CodeMapOrder Code = "map-order"

// criticalSegments marks the packages whose outputs must be
// byte-deterministic: the canonical wire encoders, the Datalog
// engines (seq/par Stats() parity), graph fingerprints, and the job
// service's rendered cells. A package is in scope when any segment of
// its import path matches.
var criticalSegments = map[string]bool{
	"wire": true, "datalog": true, "graph": true, "jobs": true,
}

// Determinism flags `range` statements over maps whose bodies feed
// order-sensitive sinks — appending to a slice declared outside the
// loop, or writing through an encoder/writer — inside
// determinism-critical packages. Go randomizes map iteration order,
// so such a loop leaks nondeterminism straight into output that PRs
// 3–9 promise is canonical. Two shapes are exempt: a loop whose
// enclosing block later sorts (collect-then-sort is the sanctioned
// fix), and loops that only aggregate commutatively (counters, sums,
// map writes), which never touch a sink.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "map iteration feeding order-sensitive output in determinism-critical packages",
	Codes: []CodeInfo{
		{CodeMapOrder, Warning, "map-range body feeds order-sensitive output (append/write) with no later sort"},
	},
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	if !determinismCritical(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(p.TypeOf(rs.X)) {
					continue
				}
				sink := findOrderSink(p, rs)
				if sink == "" {
					continue
				}
				if sortedAfter(block.List[i+1:]) {
					continue
				}
				p.Reportf(rs.Pos(), CodeMapOrder,
					"map iteration %s; map order is nondeterministic — collect keys and sort, or aggregate commutatively", sink)
			}
			return true
		})
	}
}

// determinismCritical reports whether the import path names a
// determinism-critical package (any path segment matches).
func determinismCritical(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if criticalSegments[seg] {
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderSinkCalls are callee base names that emit output in call
// order: stream writers, printers, and encoders.
var orderSinkCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "WriteTo": true,
}

// findOrderSink scans a map-range body for the first order-sensitive
// sink and describes it; "" means the body is order-insensitive
// (commutative aggregation, lookups, counters).
func findOrderSink(p *Pass, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			// s = append(s, ...) onto a slice declared outside the loop.
			for i, rhs := range node.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(node.Lhs) {
					continue
				}
				if id, ok := node.Lhs[i].(*ast.Ident); ok && declaredOutside(p, id, rs) {
					sink = "appends to " + id.Name + " (declared outside the loop)"
					return false
				}
			}
		case *ast.CallExpr:
			if name := calleeName(node); orderSinkCalls[name] {
				sink = "calls " + name
				return false
			}
		}
		return true
	})
	return sink
}

// isBuiltinAppend matches the append builtin (not a shadowing decl).
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return true // partial type info: assume the builtin
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// declaredOutside reports whether id's declaration lies outside the
// range statement.
func declaredOutside(p *Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := p.ObjectOf(id)
	if obj == nil {
		return true // partial type info: err toward reporting
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// calleeName extracts the base name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// sortedAfter reports whether any later statement in the enclosing
// block calls something sort-shaped — sort.Strings, sort.Slice,
// slices.Sort, a local sortFoo helper — which re-establishes a
// deterministic order over whatever the loop collected.
func sortedAfter(rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if strings.Contains(strings.ToLower(qualifiedCalleeName(call)), "sort") {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// qualifiedCalleeName renders a callee with its qualifier, so
// sort.Strings and slices.SortFunc both read as sort-shaped.
func qualifiedCalleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}
