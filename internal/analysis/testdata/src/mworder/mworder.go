// Package mworder is the mworder fixture: httpmw chain call sites
// checked against the middleware class order at vet time.
package mworder

import "provmark/internal/httpmw"

// Bad registers Auth before RequestID: a finding.
func Bad() (*httpmw.Chain, error) {
	return httpmw.NewChain(
		httpmw.RecoverLayer(nil),
		httpmw.AuthLayer("s3cr3t"),
		httpmw.RequestIDLayer(),
	)
}

// Dup registers the Recover class twice, once through a composite
// literal: a finding.
func Dup() *httpmw.Chain {
	return httpmw.MustNewChain(
		httpmw.RecoverLayer(nil),
		httpmw.Layer{Name: "again", Class: httpmw.ClassRecover},
	)
}

// Good is the canonical ascending order: no finding.
func Good() (*httpmw.Chain, error) {
	return httpmw.NewChain(
		httpmw.RecoverLayer(nil),
		httpmw.RequestIDLayer(),
		httpmw.AuthLayer("s3cr3t"),
		httpmw.BodyLimitLayer(1<<20),
	)
}

// Spread builds the layer slice through conditional appends the way
// jobs.NewServer does; the appends put BodyLimit ahead of Auth: a
// finding at the second append.
func Spread() (*httpmw.Chain, error) {
	layers := []httpmw.Layer{
		httpmw.RecoverLayer(nil),
		httpmw.RequestIDLayer(),
	}
	layers = append(layers, httpmw.BodyLimitLayer(1<<20))
	layers = append(layers, httpmw.AuthLayer("s3cr3t"))
	return httpmw.NewChain(layers...)
}

// Allowed documents a deliberate inversion.
func Allowed() (*httpmw.Chain, error) {
	return httpmw.NewChain(
		httpmw.RequestIDLayer(),
		//provmark:allow mw-order -- fixture: inversion under test
		httpmw.RecoverLayer(nil),
	)
}
