// Package plain is the determinism true-negative fixture: the same
// map-range-append shape as the wire fixture, but the import path has
// no determinism-critical segment, so it is out of scope.
package plain

// Collect is byte-for-byte the shape Leak has in the wire fixture.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
