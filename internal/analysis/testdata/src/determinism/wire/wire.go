// Package wire is the determinism fixture whose import path carries a
// critical segment, so map-range order leaks are findings here.
package wire

import (
	"fmt"
	"io"
	"sort"
)

// Leak appends map elements in iteration order: a finding.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Print writes through an order-sensitive sink: a finding.
func Print(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Sorted collects then sorts — the sanctioned shape: no finding.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum aggregates commutatively: no finding.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Allowed documents a deliberate exception.
func Allowed(m map[string]int) []string {
	var out []string
	//provmark:allow map-order -- fixture: order genuinely irrelevant here
	for k := range m {
		out = append(out, k)
	}
	return out
}
