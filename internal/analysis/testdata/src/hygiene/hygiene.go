// Package hygiene exercises the allow-directive validation paths:
// unknown codes, stale directives, and empty directives.
package hygiene

// Unknown code: a bad-allow error.
//
//provmark:allow no-such-code -- typo of a real code
func Unknown() {}

// Valid code that suppresses nothing: an unused-allow warning (only
// while the owning analyzer is enabled).
//
//provmark:allow map-order -- nothing here ranges over a map
func Stale() {}

// No codes at all: a bad-allow error.
//
//provmark:allow
func Empty() {}
