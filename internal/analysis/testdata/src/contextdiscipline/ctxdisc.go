// Package ctxdisc is the contextdiscipline fixture.
package ctxdisc

import "context"

// Bad takes its context second: a finding.
func Bad(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

// Good threads the context first: no finding.
func Good(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// holder stores a context in a struct field: a finding.
type holder struct {
	ctx context.Context
}

// Mint invents a root context in library code: a finding.
func Mint() context.Context {
	return context.Background()
}

// Allowed documents a deliberate process-lifetime root.
func Allowed() context.Context {
	//provmark:allow ctx-background -- fixture: deliberate root context
	return context.Background()
}

var _ = holder{}
