// Package pool is the poolsafety fixture.
package pool

import (
	"bytes"
	"sync"
)

// bufPool's New fixes the pooled type: *bytes.Buffer.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// slabPool pools byte slices.
var slabPool = sync.Pool{
	New: func() any { return make([]byte, 0, 1024) },
}

// BadGet asserts a type New never constructs: a finding (this
// assertion panics at runtime).
func BadGet() *bytes.Reader {
	return bufPool.Get().(*bytes.Reader)
}

// BadPut returns the wrong type to the pool: a finding.
func BadPut(s string) {
	bufPool.Put(s)
}

// AliasPut returns a subslice whose backing array the caller still
// holds: a finding.
func AliasPut(buf []byte, n int) {
	slabPool.Put(buf[:n])
}

// Good round-trips the pooled type: no finding.
func Good() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// Release matches the pool's type: no finding.
func Release(b *bytes.Buffer) {
	bufPool.Put(b)
}

// Allowed documents a Put whose ownership transfer is total.
func Allowed(buf []byte, n int) {
	//provmark:allow pool-alias -- fixture: ownership transfers wholly
	slabPool.Put(buf[:n])
}
