// Package cred is the credlog fixture.
package cred

import "log/slog"

// Leak logs a raw bearer token: a finding.
func Leak(authToken string) {
	slog.Info("authenticated", "token", authToken)
}

// Digest logs a derived form: no finding.
func Digest(hashedToken string) {
	slog.Info("authenticated", "token", hashedToken)
}

// Enabled logs only whether auth is configured: no finding.
func Enabled(authToken string) {
	slog.Info("auth", "enabled", authToken != "")
}

// Allowed documents a deliberate exception.
func Allowed(demoToken string) {
	//provmark:allow credlog -- fixture: demo credential, public by design
	slog.Info("demo", "token", demoToken)
}
