// Package broken fails to type-check: the loader must turn this into
// a load-error diagnostic, never a panic.
package broken

func Boom() int {
	return undefinedIdentifier
}
