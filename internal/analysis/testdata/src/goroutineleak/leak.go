// Package leak is the goroutineleak fixture.
package leak

import (
	"context"
	"sync"
)

// Fire spawns a goroutine nothing can stop or join: a finding.
func Fire(work func()) {
	go func() {
		work()
	}()
}

// WithCtx passes a context into the closure: no finding.
func WithCtx(ctx context.Context, work func()) {
	go func() {
		if ctx.Err() == nil {
			work()
		}
	}()
}

// WithChan signals completion on a channel: no finding.
func WithChan(work func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// WithGroup joins through a WaitGroup: no finding.
func WithGroup(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Allowed documents a deliberate fire-and-forget worker.
func Allowed(work func()) {
	//provmark:allow goroutine-leak -- fixture: deliberately unjoined
	go func() {
		work()
	}()
}
