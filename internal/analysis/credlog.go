package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CodeCredLog flags a credential-named identifier reaching a logging
// call.
const CodeCredLog Code = "credlog"

// CredLog flags slog/log calls whose arguments reference
// credential-named identifiers (authToken, bearer, Authorization
// headers, secrets, passwords), because a log line is the easiest way
// for a bearer token to leak into storage nobody audits. Comparisons
// (`*authToken != ""`) and sanitizer-wrapped values (`hash(token)`,
// `len(secret)`) are deliberately exempt: logging that auth is
// *enabled*, or a digest of the credential, is fine. (Migrated from
// the retired internal/lint package into the analyzer framework.)
var CredLog = &Analyzer{
	Name: "credlog",
	Doc:  "credential-named identifiers reaching slog/log calls",
	Codes: []CodeInfo{
		{CodeCredLog, Error, "credential-named identifier reaches a logging call un-sanitized"},
	},
	Run: runCredLog,
}

// slogFuncs are the log/slog package-level functions (and attr
// constructors — a credential inside slog.String leaks just the same)
// treated as logging sinks.
var slogFuncs = map[string]bool{
	"Debug": true, "DebugContext": true,
	"Info": true, "InfoContext": true,
	"Warn": true, "WarnContext": true,
	"Error": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true, "With": true,
	"String": true, "Any": true, "Bool": true, "Int": true,
	"Int64": true, "Uint64": true, "Float64": true,
	"Time": true, "Duration": true, "Group": true,
}

// logFuncs are the standard log package's printing functions.
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// methodFuncs are method names that mark a call on a non-package
// receiver as a logger call (*slog.Logger and *log.Logger methods).
var methodFuncs = map[string]bool{
	"Debug": true, "DebugContext": true,
	"Info": true, "InfoContext": true,
	"Warn": true, "WarnContext": true,
	"Error": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true, "With": true,
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// credWords mark an identifier as credential-carrying when they
// appear anywhere in its lowercased name.
var credWords = []string{"token", "bearer", "authorization", "credential", "secret", "passwd", "password", "apikey"}

// safePrefixes exempt identifiers that advertise a derived, loggable
// form of the credential.
var safePrefixes = []string{"hashed", "masked", "redacted", "scrubbed", "sanitized"}

// sanitizers exempt call wrappers whose name promises the raw value
// does not survive the call.
var sanitizers = []string{"hash", "redact", "mask", "sanitize", "scrub", "len"}

// credNamed reports whether an identifier names a raw credential.
func credNamed(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range safePrefixes {
		if strings.HasPrefix(lower, p) {
			return false
		}
	}
	for _, w := range credWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// sanitizing reports whether a callee name neutralizes its argument.
func sanitizing(name string) bool {
	lower := strings.ToLower(name)
	for _, s := range sanitizers {
		if strings.HasPrefix(lower, s) {
			return true
		}
	}
	return false
}

func runCredLog(p *Pass) {
	for _, file := range p.Files {
		// Map package-qualified selectors: only calls through the slog
		// and log imports count as package-level sinks; any other
		// package ident (fmt, errors, ...) is not a logging call no
		// matter the name.
		pkgNames := map[string]string{}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			name := path[strings.LastIndexByte(path, '/')+1:]
			if imp.Name != nil {
				name = imp.Name.Name
			}
			pkgNames[name] = path
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, isSink := loggingCallee(call, pkgNames)
			if !isSink {
				return true
			}
			for _, arg := range call.Args {
				scanCredArg(p, callee, arg)
			}
			return true
		})
	}
}

// loggingCallee classifies a call expression: ("slog.Info", true) for
// a sink, ("", false) otherwise.
func loggingCallee(call *ast.CallExpr, pkgNames map[string]string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if recv, ok := sel.X.(*ast.Ident); ok {
		if path, imported := pkgNames[recv.Name]; imported {
			switch {
			case path == "log/slog" && slogFuncs[name]:
				return recv.Name + "." + name, true
			case path == "log" && logFuncs[name]:
				return recv.Name + "." + name, true
			}
			// A call through any other package is not a logging sink.
			return "", false
		}
		if methodFuncs[name] {
			return recv.Name + "." + name, true
		}
		return "", false
	}
	if methodFuncs[name] {
		return "(...)." + name, true
	}
	return "", false
}

// scanCredArg walks one call argument for credential-named
// identifiers, pruning comparison expressions (logging *whether* a
// token is set is fine) and sanitizer wrappers (logging a digest is
// fine).
func scanCredArg(p *Pass, callee string, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			switch node.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				return false
			}
		case *ast.CallExpr:
			if sanitizing(calleeName(node)) {
				return false
			}
		case *ast.Ident:
			if credNamed(node.Name) {
				p.Reportf(node.Pos(), CodeCredLog,
					"credential-named identifier %q reaches logging call %s", node.Name, callee)
			}
		}
		return true
	})
}
