// Package neo4jsim is an in-memory stand-in for the Neo4j graph
// database OPUS stores provenance in. It supports the operations the
// OPUS pipeline needs — creating labelled nodes and relationships with
// properties, and bulk extraction queries — and deliberately models the
// costs the paper attributes to OPUS's storage layer: a one-time
// warm-up on first query (JVM start-up plus store initialization) and
// per-row extraction work. Figures 6 and 9 are dominated by exactly
// these costs.
package neo4jsim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"provmark/internal/graph"
)

// NodeID identifies a stored node.
type NodeID int64

// RelID identifies a stored relationship.
type RelID int64

type nodeRec struct {
	id    NodeID
	label string
	props map[string]string
}

type relRec struct {
	id       RelID
	from, to NodeID
	typ      string
	props    map[string]string
}

// DB is one database instance (one OPUS recording).
type DB struct {
	nodes    []nodeRec
	rels     []relRec
	warmedUp bool
	warmWork int // number of warm-up pages to checksum
	scanWork int // extra hash rounds per extracted row
	workSink uint64
}

// Options tunes the simulated storage costs.
type Options struct {
	// WarmupPages is the number of 8 KiB store pages checksummed on the
	// first query, modelling JVM start-up and store recovery. Zero
	// selects the default (a few thousand pages, tens of milliseconds).
	WarmupPages int
	// ScanRoundsPerRow is the per-row decoding work during extraction.
	// Zero selects the default.
	ScanRoundsPerRow int
}

// New creates an empty database.
func New(opts Options) *DB {
	if opts.WarmupPages == 0 {
		opts.WarmupPages = 12000
	}
	if opts.ScanRoundsPerRow == 0 {
		opts.ScanRoundsPerRow = 60
	}
	return &DB{warmWork: opts.WarmupPages, scanWork: opts.ScanRoundsPerRow}
}

// CreateNode stores a node and returns its id.
func (db *DB) CreateNode(label string, props map[string]string) NodeID {
	id := NodeID(len(db.nodes) + 1)
	db.nodes = append(db.nodes, nodeRec{id: id, label: label, props: cloneMap(props)})
	return id
}

// CreateRel stores a relationship between two nodes.
func (db *DB) CreateRel(from, to NodeID, typ string, props map[string]string) (RelID, error) {
	if !db.validNode(from) || !db.validNode(to) {
		return 0, fmt.Errorf("neo4jsim: relationship endpoint missing (%d -> %d)", from, to)
	}
	id := RelID(len(db.rels) + 1)
	db.rels = append(db.rels, relRec{id: id, from: from, to: to, typ: typ, props: cloneMap(props)})
	return id, nil
}

func (db *DB) validNode(id NodeID) bool {
	return id >= 1 && int(id) <= len(db.nodes)
}

// NumNodes reports the stored node count.
func (db *DB) NumNodes() int { return len(db.nodes) }

// NumRels reports the stored relationship count.
func (db *DB) NumRels() int { return len(db.rels) }

// warmup performs the one-time start-up cost: checksumming simulated
// store pages. The sink prevents the work from being optimized away.
func (db *DB) warmup() {
	if db.warmedUp {
		return
	}
	db.warmedUp = true
	page := make([]byte, 8192)
	for i := 0; i < db.warmWork; i++ {
		binary.LittleEndian.PutUint64(page, uint64(i)^db.workSink)
		sum := sha256.Sum256(page)
		db.workSink ^= binary.LittleEndian.Uint64(sum[:8])
	}
}

// rowWork models per-row decode cost during extraction.
func (db *DB) rowWork(seed uint64) {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[:8], seed^db.workSink)
	for i := 0; i < db.scanWork; i++ {
		buf = sha256.Sum256(buf[:])
	}
	db.workSink ^= binary.LittleEndian.Uint64(buf[:8])
}

// MatchNodes returns the ids of all nodes with the given label, in id
// order. It triggers warm-up.
func (db *DB) MatchNodes(label string) []NodeID {
	db.warmup()
	var out []NodeID
	for _, n := range db.nodes {
		db.rowWork(uint64(n.id))
		if n.label == label {
			out = append(out, n.id)
		}
	}
	return out
}

// SetNodeProps merges properties into an existing node (Neo4j's SET
// clause). Unknown ids return false.
func (db *DB) SetNodeProps(id NodeID, props map[string]string) bool {
	if !db.validNode(id) {
		return false
	}
	n := &db.nodes[id-1]
	if n.props == nil {
		n.props = make(map[string]string, len(props))
	}
	for k, v := range props {
		n.props[k] = v
	}
	return true
}

// NodeProps returns a copy of a node's properties.
func (db *DB) NodeProps(id NodeID) (map[string]string, bool) {
	if !db.validNode(id) {
		return nil, false
	}
	return cloneMap(db.nodes[id-1].props), true
}

// Export extracts the full database as a property graph (the
// transformation stage's bulk query). It triggers warm-up and performs
// per-row extraction work, so it is deliberately the slowest part of
// the OPUS pipeline.
func (db *DB) Export() (*graph.Graph, error) {
	db.warmup()
	g := graph.New()
	for _, n := range db.nodes {
		db.rowWork(uint64(n.id))
		id := graph.ElemID(fmt.Sprintf("n%d", n.id))
		props := graph.Properties{}
		for k, v := range n.props {
			props[k] = v
		}
		if len(props) == 0 {
			props = nil
		}
		if err := g.InsertNode(id, n.label, props); err != nil {
			return nil, fmt.Errorf("neo4jsim: export: %w", err)
		}
	}
	for _, r := range db.rels {
		db.rowWork(uint64(r.id) << 32)
		id := graph.ElemID(fmt.Sprintf("e%d", r.id))
		props := graph.Properties{}
		for k, v := range r.props {
			props[k] = v
		}
		if len(props) == 0 {
			props = nil
		}
		src := graph.ElemID(fmt.Sprintf("n%d", r.from))
		tgt := graph.ElemID(fmt.Sprintf("n%d", r.to))
		if err := g.InsertEdge(id, src, tgt, r.typ, props); err != nil {
			return nil, fmt.Errorf("neo4jsim: export: %w", err)
		}
	}
	return g, nil
}

// PropertyHistogram counts property keys across all nodes, a helper the
// configuration-validation example uses to inspect stored data.
func (db *DB) PropertyHistogram() map[string]int {
	out := map[string]int{}
	for _, n := range db.nodes {
		for k := range n.props {
			out[k]++
		}
	}
	return out
}

// Labels returns the distinct node labels, sorted.
func (db *DB) Labels() []string {
	seen := map[string]bool{}
	for _, n := range db.nodes {
		seen[n.label] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
