package neo4jsim

import (
	"testing"
	"time"
)

func fastDB() *DB {
	return New(Options{WarmupPages: 1, ScanRoundsPerRow: 1})
}

func TestCreateAndExport(t *testing.T) {
	db := fastDB()
	p := db.CreateNode("Process", map[string]string{"pid": "1"})
	e := db.CreateNode("Event", nil)
	if _, err := db.CreateRel(e, p, "PERFORMED_BY", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 2 || db.NumRels() != 1 {
		t.Fatalf("counts: %d nodes %d rels", db.NumNodes(), db.NumRels())
	}
	g, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("export: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	edge := g.Edges()[0]
	if edge.Label != "PERFORMED_BY" || edge.Props["k"] != "v" {
		t.Errorf("edge = %+v", edge)
	}
}

func TestCreateRelValidatesEndpoints(t *testing.T) {
	db := fastDB()
	n := db.CreateNode("X", nil)
	if _, err := db.CreateRel(n, 99, "T", nil); err == nil {
		t.Error("dangling relationship accepted")
	}
	if _, err := db.CreateRel(0, n, "T", nil); err == nil {
		t.Error("zero endpoint accepted")
	}
}

func TestMatchNodes(t *testing.T) {
	db := fastDB()
	db.CreateNode("A", nil)
	b := db.CreateNode("B", nil)
	db.CreateNode("A", nil)
	got := db.MatchNodes("B")
	if len(got) != 1 || got[0] != b {
		t.Errorf("MatchNodes(B) = %v", got)
	}
	if len(db.MatchNodes("missing")) != 0 {
		t.Error("phantom matches")
	}
}

func TestNodeProps(t *testing.T) {
	db := fastDB()
	n := db.CreateNode("X", map[string]string{"k": "v"})
	props, ok := db.NodeProps(n)
	if !ok || props["k"] != "v" {
		t.Fatalf("props = %v", props)
	}
	props["k"] = "mutated"
	again, _ := db.NodeProps(n)
	if again["k"] != "v" {
		t.Error("NodeProps exposed internal map")
	}
	if _, ok := db.NodeProps(42); ok {
		t.Error("missing node reported present")
	}
}

func TestPropertyHistogramAndLabels(t *testing.T) {
	db := fastDB()
	db.CreateNode("B", map[string]string{"x": "1"})
	db.CreateNode("A", map[string]string{"x": "1", "y": "2"})
	hist := db.PropertyHistogram()
	if hist["x"] != 2 || hist["y"] != 1 {
		t.Errorf("hist = %v", hist)
	}
	labels := db.Labels()
	if len(labels) != 2 || labels[0] != "A" || labels[1] != "B" {
		t.Errorf("labels = %v", labels)
	}
}

// TestWarmupIsOneTime: the first query pays the warm-up cost; later
// queries on the same database do not pay it again.
func TestWarmupIsOneTime(t *testing.T) {
	db := New(Options{WarmupPages: 3000, ScanRoundsPerRow: 1})
	db.CreateNode("X", nil)
	start := time.Now()
	db.MatchNodes("X")
	first := time.Since(start)
	start = time.Now()
	db.MatchNodes("X")
	second := time.Since(start)
	if second > first {
		t.Errorf("second query (%v) slower than warm-up query (%v)", second, first)
	}
}

func TestExportPreservesIdentityAcrossCalls(t *testing.T) {
	db := fastDB()
	a := db.CreateNode("X", nil)
	b := db.CreateNode("Y", nil)
	if _, err := db.CreateRel(a, b, "R", nil); err != nil {
		t.Fatal(err)
	}
	g1, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := db.Export()
	if err != nil {
		t.Fatal(err)
	}
	if g1.String() != g2.String() {
		t.Error("exports differ")
	}
}
