package profile

import (
	"strings"
	"testing"

	"provmark/internal/benchprog"

	// Register the backends profile.Build resolves by name.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func TestDefaultProfiles(t *testing.T) {
	cfg := Default()
	names := cfg.Names()
	want := []string{"cam", "opu", "spc", "spg", "spn"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v, want %v", names, want)
	}
	cam, ok := cfg.Profile("cam")
	if !ok || !cam.FilterGraphs {
		t.Error("cam profile should enable graph filtering")
	}
	spg, _ := cfg.Profile("spg")
	if spg.FilterGraphs || spg.Stage2Handler != "dot" {
		t.Errorf("spg profile = %+v", spg)
	}
}

func TestBuildAllDefaultProfiles(t *testing.T) {
	cfg := Default()
	wantName := map[string]string{"spg": "spade", "spn": "spade", "spc": "spade", "opu": "opus", "cam": "camflow"}
	for _, name := range cfg.Names() {
		rec, err := cfg.Build(name)
		if err != nil {
			t.Errorf("build %s: %v", name, err)
			continue
		}
		if rec.Name() != wantName[name] {
			t.Errorf("%s built %s", name, rec.Name())
		}
	}
}

func TestBuiltRecorderRecords(t *testing.T) {
	cfg, err := ParseString(`
[fastspn]
stage1tool = spade
stage2handler = neo4j
warmup_pages = 1
scan_rounds = 1
`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfg.Build("fastspn")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := benchprog.ByName("open")
	n, err := rec.Record(prog, benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Format() != "neo4j" {
		t.Errorf("format = %s", n.Format())
	}
	if _, err := rec.Transform(n); err != nil {
		t.Fatal(err)
	}
}

func TestCustomOptions(t *testing.T) {
	cfg, err := ParseString(`
# comment
; another comment
[tuned]
stage1tool = camflow
stage2handler = prov-json
filtergraphs = true
record_denied = true
`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfg.Build("tuned")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FilterGraphs() {
		t.Error("filtergraphs not applied")
	}
	// record_denied makes the failed rename visible under CamFlow.
	prog := benchprog.FailedRename()
	nFG, err := rec.Record(prog, benchprog.Foreground, 0)
	if err != nil {
		t.Fatal(err)
	}
	gFG, err := rec.Transform(nFG)
	if err != nil {
		t.Fatal(err)
	}
	nBG, err := rec.Record(prog, benchprog.Background, 0)
	if err != nil {
		t.Fatal(err)
	}
	gBG, err := rec.Transform(nBG)
	if err != nil {
		t.Fatal(err)
	}
	if gFG.Size() <= gBG.Size() {
		t.Error("record_denied option had no effect")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"key = value\n",             // key outside section
		"[a]\nstage1tool spade\n",   // missing =
		"[]\n",                      // empty section
		"[a]\n[a]\n",                // duplicate
		"[a]\nfiltergraphs = huh\n", // bad bool
	}
	for _, input := range cases {
		if _, err := ParseString(input); err == nil {
			t.Errorf("accepted %q", input)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cfg, err := ParseString(`
[weird]
stage1tool = pass
[mismatched]
stage1tool = opus
stage2handler = dot
[badspade]
stage1tool = spade
stage2handler = prov-json
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"weird", "mismatched", "badspade", "missing"} {
		if _, err := cfg.Build(name); err == nil {
			t.Errorf("build %s succeeded", name)
		}
	}
}
