// Package profile implements the paper's config/config.ini mechanism
// (Appendix A.4): each profile names a capture tool, binds its
// recording handler (stage 1) and transformation handler (stage 2), and
// sets the graph-filtering flag. The CLI tools resolve their -tool
// argument through this registry so new recorders can be added by
// writing a profile, exactly as the paper describes.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"provmark/internal/capture"
)

// Profile is one [section] of the configuration file.
type Profile struct {
	Name          string
	Stage1Tool    string // recorder implementation: spade, opus, camflow
	Stage2Handler string // transformation handler: dot, neo4j, prov-json
	FilterGraphs  bool
	// Options carries implementation-specific keys (e.g. simplify,
	// ioruns, warmup_pages).
	Options map[string]string
}

// Config is a parsed configuration file.
type Config struct {
	profiles map[string]Profile
}

// Parse reads an INI-style configuration:
//
//	[spg]
//	stage1tool = spade
//	stage2handler = dot
//	filtergraphs = false
//	simplify = true
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{profiles: map[string]Profile{}}
	sc := bufio.NewScanner(r)
	var cur *Profile
	lineNo := 0
	flush := func() {
		if cur != nil {
			cfg.profiles[cur.Name] = *cur
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
			flush()
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, fmt.Errorf("profile: line %d: empty section name", lineNo)
			}
			if _, dup := cfg.profiles[name]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate section %q", lineNo, name)
			}
			cur = &Profile{Name: name, Options: map[string]string{}}
		default:
			if cur == nil {
				return nil, fmt.Errorf("profile: line %d: key outside any section", lineNo)
			}
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("profile: line %d: expected key = value", lineNo)
			}
			key := strings.TrimSpace(line[:eq])
			val := strings.TrimSpace(line[eq+1:])
			switch key {
			case "stage1tool":
				cur.Stage1Tool = val
			case "stage2handler":
				cur.Stage2Handler = val
			case "filtergraphs":
				b, err := strconv.ParseBool(val)
				if err != nil {
					return nil, fmt.Errorf("profile: line %d: filtergraphs: %v", lineNo, err)
				}
				cur.FilterGraphs = b
			default:
				cur.Options[key] = val
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: read: %w", err)
	}
	flush()
	return cfg, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Config, error) {
	return Parse(strings.NewReader(s))
}

// Default returns the built-in configuration matching the paper's
// shipped config.ini: spg, spn, opu and cam profiles with their
// baseline settings.
func Default() *Config {
	cfg, err := ParseString(DefaultINI)
	if err != nil {
		panic("profile: built-in config invalid: " + err.Error())
	}
	return cfg
}

// DefaultINI is the text of the built-in configuration.
const DefaultINI = `# ProvMark tool profiles (Appendix A.4).
[spg]
stage1tool = spade
stage2handler = dot
filtergraphs = false

[spn]
stage1tool = spade
stage2handler = neo4j
filtergraphs = false

[opu]
stage1tool = opus
stage2handler = neo4j
filtergraphs = false

[cam]
stage1tool = camflow
stage2handler = prov-json
filtergraphs = true

# SPADE consuming CamFlow (LSM) events instead of Linux Audit — the
# configuration the paper mentions but did not evaluate.
[spc]
stage1tool = spade
stage2handler = dot
reporter = camflow
`

// Names lists the configured profile names, sorted.
func (c *Config) Names() []string {
	out := make([]string, 0, len(c.profiles))
	for name := range c.profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Profile returns a profile by name.
func (c *Config) Profile(name string) (Profile, bool) {
	p, ok := c.profiles[name]
	return p, ok
}

// Build instantiates the recorder a profile describes.
func (c *Config) Build(name string) (capture.Recorder, error) {
	p, ok := c.profiles[name]
	if !ok {
		return nil, fmt.Errorf("profile: unknown profile %q (have %s)", name, strings.Join(c.Names(), ", "))
	}
	return p.Build()
}

// Build instantiates this profile's recorder through the capture
// registry: the profile's stage1tool names the backend, its options
// pass through as registry params, and the stage2handler maps to the
// backend's storage selection. Callers must link the backends they
// want resolvable (import them for side effects).
func (p Profile) Build() (capture.Recorder, error) {
	params := make(map[string]string, len(p.Options)+2)
	for k, v := range p.Options {
		params[k] = v
	}
	params["filtergraphs"] = strconv.FormatBool(p.FilterGraphs)
	switch p.Stage1Tool {
	case "spade":
		if p.Stage2Handler != "" {
			params["storage"] = p.Stage2Handler
		}
	case "opus":
		if p.Stage2Handler != "neo4j" && p.Stage2Handler != "" {
			return nil, fmt.Errorf("profile %s: opus cannot emit %q", p.Name, p.Stage2Handler)
		}
	case "camflow":
		if p.Stage2Handler != "prov-json" && p.Stage2Handler != "" {
			return nil, fmt.Errorf("profile %s: camflow cannot emit %q", p.Name, p.Stage2Handler)
		}
	}
	rec, err := capture.Open(p.Stage1Tool, capture.Options{Params: params})
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", p.Name, err)
	}
	return rec, nil
}
