// Package repro_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper, plus ablation
// benchmarks for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks whose paper counterpart depends on storage costs (the
// OPUS figures) use the full-cost suite; matrix-style benchmarks use
// the fast suite so an iteration stays in the hundreds of milliseconds.
// All multi-cell benchmarks execute through the provmark.Matrix runner
// (the suite's per-stage timings come from the pipeline's observer
// hooks, not ad-hoc plumbing).
package repro_test

import (
	"context"
	"testing"

	"provmark/internal/asp"
	"provmark/internal/bench"
	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/match"
	"provmark/internal/provmark"

	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

// BenchmarkTable2Validation regenerates the full 44x3 validation matrix
// (Table 2).
func BenchmarkTable2Validation(b *testing.B) {
	s := bench.NewSuite(true)
	for i := 0; i < b.N; i++ {
		res, err := s.RunTable2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Mismatches != 0 {
			b.Fatalf("%d cells disagree with the paper", res.Mismatches)
		}
	}
}

// BenchmarkTable3ExampleGraphs regenerates the example graph shapes
// (Table 3).
func BenchmarkTable3ExampleGraphs(b *testing.B) {
	s := bench.NewSuite(true)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunTable3(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Rename regenerates the three rename representations
// (Figure 1).
func BenchmarkFig1Rename(b *testing.B) {
	s := bench.NewSuite(true)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFig1(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func timingBenchmark(b *testing.B, tool string, fast bool) {
	b.Helper()
	s := bench.NewSuite(fast)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunTiming(context.Background(), tool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5SpadeStages regenerates the SPADE per-stage timing runs
// (Figure 5).
func BenchmarkFig5SpadeStages(b *testing.B) { timingBenchmark(b, "spade", false) }

// BenchmarkFig6OpusStages regenerates the OPUS per-stage timing runs
// (Figure 6); the Neo4j warm-up cost dominates, as in the paper.
func BenchmarkFig6OpusStages(b *testing.B) { timingBenchmark(b, "opus", false) }

// BenchmarkFig7CamflowStages regenerates the CamFlow per-stage timing
// runs (Figure 7).
func BenchmarkFig7CamflowStages(b *testing.B) { timingBenchmark(b, "camflow", false) }

func scaleBenchmark(b *testing.B, tool string, fast bool) {
	b.Helper()
	s := bench.NewSuite(fast)
	for i := 0; i < b.N; i++ {
		if _, err := s.RunScalability(context.Background(), tool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SpadeScale regenerates the SPADE scalability sweep
// (Figure 8, scale1..scale8).
func BenchmarkFig8SpadeScale(b *testing.B) { scaleBenchmark(b, "spade", false) }

// BenchmarkFig9OpusScale regenerates the OPUS scalability sweep
// (Figure 9).
func BenchmarkFig9OpusScale(b *testing.B) { scaleBenchmark(b, "opus", false) }

// BenchmarkFig10CamflowScale regenerates the CamFlow scalability sweep
// (Figure 10).
func BenchmarkFig10CamflowScale(b *testing.B) { scaleBenchmark(b, "camflow", false) }

// BenchmarkTable4ModuleSizes regenerates the module line counts
// (Table 4).
func BenchmarkTable4ModuleSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4ModuleSizes("."); err != nil {
			b.Fatal(err)
		}
	}
}

// scalePair produces two generalizable CamFlow foreground graphs of the
// scale4 benchmark, the ablation workload for the matcher engines.
func scalePair(b *testing.B) (*graph.Graph, *graph.Graph) {
	b.Helper()
	rec, err := capture.OpenContext("camflow", capture.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := benchprog.ScaleProgram(4)
	var graphs []*graph.Graph
	for trial := 0; trial < 2; trial++ {
		n, err := rec.Record(context.Background(), prog, benchprog.Foreground, trial)
		if err != nil {
			b.Fatal(err)
		}
		g, err := rec.Transform(n)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	return graphs[0], graphs[1]
}

// BenchmarkAblationMatcherASP measures similarity checking via the
// ASP-encoded solver path.
func BenchmarkAblationMatcherASP(b *testing.B) {
	g1, g2 := scalePair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := match.Similar(g1, g2); !ok {
			b.Fatal("scale4 trial graphs should be similar")
		}
	}
}

// BenchmarkAblationMatcherDirect measures the same check via the
// hand-rolled VF2-style backtracking engine.
func BenchmarkAblationMatcherDirect(b *testing.B) {
	g1, g2 := scalePair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := match.SimilarDirect(g1, g2); !ok {
			b.Fatal("scale4 trial graphs should be similar")
		}
	}
}

// BenchmarkAblationCostMinimization measures the comparison stage's
// optimizing embed against first-solution search, quantifying what the
// #minimize objective costs.
func BenchmarkAblationCostMinimization(b *testing.B) {
	s := bench.NewSuite(true)
	res, err := s.Run(context.Background(), "camflow", "rename")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("minimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := match.SubgraphEmbed(res.BG, res.FG); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSpadeStorage compares SPADE's two storage backends:
// the Graphviz backend (spade) against the Neo4j backend (spn), both
// resolved through the capture registry. The backend alone recreates
// the OPUS-like transformation bottleneck.
func BenchmarkAblationSpadeStorage(b *testing.B) {
	prog, _ := benchprog.ByName("rename")
	run := func(b *testing.B, backend string) {
		rec, err := capture.OpenContext(backend, capture.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			n, err := rec.Record(context.Background(), prog, benchprog.Foreground, i)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rec.Transform(n); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("spg-dot", func(b *testing.B) { run(b, "spade") })
	b.Run("spn-neo4j", func(b *testing.B) { run(b, "spn") })
}

// BenchmarkPipelineEndToEnd measures one full pipeline run (rename
// under SPADE), the unit of work every experiment repeats.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	s := bench.NewSuite(true)
	rec, err := s.Recorder("spade")
	if err != nil {
		b.Fatal(err)
	}
	prog, _ := benchprog.ByName("rename")
	runner := provmark.New(rec)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunContext(ctx, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityEngineMatrix measures what the classification
// engine costs a full matrix run: the (3 tools × 5 timing syscalls)
// grid with per-run ASP solver invocations and fingerprint
// computations reported alongside wall-clock time. The Matrix runner
// injects one shared classifier per run, so within-run fingerprint and
// verdict reuse shows up directly in these metrics.
func BenchmarkSimilarityEngineMatrix(b *testing.B) {
	progs := make([]benchprog.Program, 0, len(bench.TimingSyscalls))
	for _, sc := range bench.TimingSyscalls {
		prog, ok := benchprog.ByName(sc)
		if !ok {
			b.Fatalf("unknown benchmark %q", sc)
		}
		progs = append(progs, prog)
	}
	m := provmark.Matrix{
		Tools:      []string{"spade", "opus", "camflow"},
		Capture:    capture.Options{Fast: true},
		Benchmarks: progs,
		Workers:    4,
	}
	startSolves := asp.SolveInvocations()
	startPrints := graph.FingerprintComputations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := m.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, cell := range cells {
			if cell.Err != nil {
				b.Fatal(cell.Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(asp.SolveInvocations()-startSolves)/float64(b.N), "solves/op")
	b.ReportMetric(float64(graph.FingerprintComputations()-startPrints)/float64(b.N), "fingerprints/op")
}

// BenchmarkMatrixFanout measures the streaming matrix runner over the
// (3 tools × 5 timing syscalls) grid at increasing worker-pool bounds
// — the scaling shape of the one execution path the CLIs and suite
// share.
func BenchmarkMatrixFanout(b *testing.B) {
	progs := make([]benchprog.Program, 0, len(bench.TimingSyscalls))
	for _, sc := range bench.TimingSyscalls {
		prog, ok := benchprog.ByName(sc)
		if !ok {
			b.Fatalf("unknown benchmark %q", sc)
		}
		progs = append(progs, prog)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			m := provmark.Matrix{
				Tools:      []string{"spade", "opus", "camflow"},
				Capture:    capture.Options{Fast: true},
				Benchmarks: progs,
				Workers:    workers,
			}
			for i := 0; i < b.N; i++ {
				cells, err := m.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				for _, cell := range cells {
					if cell.Err != nil {
						b.Fatal(cell.Err)
					}
				}
			}
		})
	}
}
